"""Differential tests: dict-based reference pass vs. the array core.

Randomly generated circuits (:mod:`repro.circuit.generator`) are pushed
through both implementations of every rewritten layer — the electrical
annotation, the Section-3.2 masking sweep, and the full ``analyze`` —
asserting identical sample-width tables, expected widths and per-gate
contributions.  "Identical" here is floating-point identical up to
reassociation noise (1e-9 relative is orders of magnitude looser than
the observed differences, which sit at the last few ulps).
"""

from __future__ import annotations

import pytest

from conformance import (
    RTOL,
    assert_masking_results_agree,
    assert_reports_agree,
    mixed_assignment,
)
from repro.circuit.generator import GeneratorSpec, generate_circuit
from repro.circuit.iscas85 import iscas85_circuit
from repro.core.aserta import AsertaAnalyzer, AsertaConfig
from repro.core.electrical_masking import (
    electrical_masking,
    electrical_masking_reference,
)
from repro.tech.library import CellParams, ParameterAssignment
SPECS = [
    GeneratorSpec("diff-control", 6, 3, 40, 5, seed=2, flavor="control"),
    GeneratorSpec("diff-alu", 8, 4, 70, 6, seed=17, flavor="alu"),
    GeneratorSpec("diff-parity", 5, 2, 30, 4, seed=33, flavor="parity"),
    GeneratorSpec("diff-deep", 4, 2, 48, 12, seed=71, flavor="control"),
    GeneratorSpec("diff-wide", 16, 8, 90, 4, seed=5, flavor="alu"),
]


@pytest.fixture(params=range(len(SPECS)), ids=[s.name for s in SPECS])
def case(request):
    spec = SPECS[request.param]
    circuit = generate_circuit(spec)
    analyzer = AsertaAnalyzer(
        circuit, AsertaConfig(n_vectors=256, seed=spec.seed)
    )
    assignment = mixed_assignment(circuit, spec.seed)
    return circuit, analyzer, assignment


class TestElectricalViewDifferential:
    def test_annotation_dicts_agree(self, case):
        circuit, analyzer, assignment = case
        scalar = analyzer.electrical_view(assignment, vectorized=False)
        arrays = analyzer.electrical_view(assignment, vectorized=True)
        for attr in (
            "load_ff", "input_ramp_ps", "output_ramp_ps", "delay_ps",
            "node_cap_ff", "generated_width_ps", "static_power_uw",
            "area_units",
        ):
            want = getattr(scalar, attr)
            got = getattr(arrays, attr)
            assert set(want) == set(got), attr
            for name, value in want.items():
                assert got[name] == pytest.approx(
                    value, rel=RTOL, abs=1e-15
                ), (attr, name)


class TestMaskingDifferential:
    def test_tables_and_expected_identical(self, case):
        circuit, analyzer, assignment = case
        elec = analyzer.electrical_view(assignment)
        reference = electrical_masking_reference(
            circuit, elec, analyzer.probabilities, analyzer.sensitized_paths
        )
        vectorized = electrical_masking(
            circuit,
            elec,
            analyzer.probabilities,
            analyzer.sensitized_paths,
            structure=analyzer.structure,
        )
        assert_masking_results_agree(vectorized, reference)


class TestFullAnalysisDifferential:
    def test_reports_agree(self, case):
        __, analyzer, assignment = case
        reference = analyzer.analyze(assignment, engine="reference")
        arrays = analyzer.analyze(assignment, engine="array")
        assert_reports_agree(arrays, reference)

    def test_missing_probabilities_fail_loudly(self, case):
        """The dense structure must reject incomplete probability maps
        (the scalar path raises KeyError) instead of zero-filling."""
        circuit, analyzer, __unused = case
        from repro.core.masking import masking_structure
        from repro.errors import AnalysisError

        some_fanin = next(circuit.gates()).fanins[0]
        partial = dict(analyzer.probabilities)
        partial.pop(some_fanin)
        with pytest.raises(AnalysisError):
            masking_structure(circuit, partial, analyzer.sensitized_paths)

    def test_foreign_structure_rejected(self, case):
        """A prebuilt masking structure from a different circuit cannot
        silently drive the sweep."""
        circuit, analyzer, assignment = case
        from repro.errors import AnalysisError

        other = iscas85_circuit("c17")
        other_analyzer = AsertaAnalyzer(
            other, AsertaConfig(n_vectors=100, seed=0)
        )
        elec = analyzer.electrical_view(assignment)
        with pytest.raises(AnalysisError):
            electrical_masking(
                circuit,
                elec,
                analyzer.probabilities,
                analyzer.sensitized_paths,
                structure=other_analyzer.structure,
            )

    def test_engine_validation(self, case):
        __, analyzer, __unused = case
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            analyzer.analyze(engine="quantum")


def test_gateless_feedthrough_circuit_annotates():
    """Regression: a valid gate-less circuit (input marked as output)
    must annotate through the default vectorized path exactly like the
    scalar one instead of crashing on an empty table stack."""
    from repro.circuit.netlist import Circuit
    from repro.tech.electrical_view import CircuitElectrical

    circuit = Circuit("feedthrough")
    circuit.add_input("a")
    circuit.mark_output("a")
    circuit.validate()
    vectorized = CircuitElectrical(circuit, ParameterAssignment())
    scalar = CircuitElectrical(
        circuit, ParameterAssignment(), vectorized=False
    )
    assert vectorized.load_ff == scalar.load_ff
    assert vectorized.output_ramp_ps == scalar.output_ramp_ps
    assert vectorized.delay_ps == scalar.delay_ps == {}


def test_integer_valued_cell_params_do_not_truncate():
    """Regression: an int-valued default (CellParams(size=2)) must not
    make the array path's parameter vectors integer-typed and truncate
    float overrides (size=1.5 used to become 1)."""
    analyzer = AsertaAnalyzer(
        iscas85_circuit("c17"), AsertaConfig(n_vectors=300, seed=1)
    )
    assignment = ParameterAssignment(
        default=CellParams(size=2),
        overrides={"22": CellParams(size=1.5)},
    )
    reference = analyzer.analyze(assignment, engine="reference")
    arrays = analyzer.analyze(assignment, engine="array")
    assert arrays.unreliability.per_gate["22"].size == 1.5
    assert arrays.total == pytest.approx(reference.total, rel=RTOL)


def test_charge_override_agrees_on_c432():
    """The campaign axes (charge + sample-width overrides) agree across
    engines on a real benchmark circuit."""
    analyzer = AsertaAnalyzer(
        iscas85_circuit("c432"), AsertaConfig(n_vectors=500, seed=4)
    )
    for charge in (4.0, 16.0, 48.0):
        reference = analyzer.analyze(
            charge_fc=charge, n_sample_widths=6, engine="reference"
        )
        arrays = analyzer.analyze(charge_fc=charge, n_sample_widths=6)
        assert arrays.total == pytest.approx(reference.total, rel=RTOL)
