"""Functional tests for the combinational building blocks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.builders import (
    NameScope,
    decoder,
    equality_comparator,
    expand_xor_to_nand,
    full_adder,
    mux_tree,
    reduce_tree,
    ripple_adder,
    xor_tree,
)
from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit
from repro.errors import CircuitError
from repro.logicsim.bitsim import BitParallelSimulator


def evaluate(circuit: Circuit, assignment: dict) -> dict:
    return BitParallelSimulator(circuit).simulate_one(assignment)


class TestNameScope:
    def test_names_are_unique(self):
        scope = NameScope("t")
        names = {scope.fresh() for __ in range(100)}
        assert len(names) == 100

    def test_hint_is_embedded(self):
        assert "xor" in NameScope("p").fresh("xor")


class TestReduceTree:
    def test_single_signal_passthrough(self):
        circuit = Circuit()
        a = circuit.add_input("a")
        scope = NameScope()
        assert reduce_tree(circuit, scope, GateType.AND, [a]) == "a"

    def test_empty_rejected(self):
        with pytest.raises(CircuitError):
            reduce_tree(Circuit(), NameScope(), GateType.AND, [])

    @settings(max_examples=20, deadline=None)
    @given(bits=st.lists(st.booleans(), min_size=2, max_size=9))
    def test_and_tree_computes_conjunction(self, bits):
        circuit = Circuit()
        inputs = [circuit.add_input(f"i{k}") for k in range(len(bits))]
        root = reduce_tree(circuit, NameScope(), GateType.AND, inputs)
        circuit.mark_output(root)
        values = evaluate(circuit, dict(zip(inputs, bits)))
        assert values[root] == all(bits)

    @settings(max_examples=20, deadline=None)
    @given(bits=st.lists(st.booleans(), min_size=2, max_size=9))
    def test_xor_tree_computes_parity(self, bits):
        circuit = Circuit()
        inputs = [circuit.add_input(f"i{k}") for k in range(len(bits))]
        root = xor_tree(circuit, NameScope(), inputs)
        circuit.mark_output(root)
        values = evaluate(circuit, dict(zip(inputs, bits)))
        parity = False
        for bit in bits:
            parity ^= bit
        assert values[root] == parity


class TestAdders:
    def test_full_adder_truth_table(self):
        for a in (False, True):
            for b in (False, True):
                for cin in (False, True):
                    circuit = Circuit()
                    ia, ib, ic = (circuit.add_input(n) for n in "abc")
                    total, carry = full_adder(circuit, NameScope(), ia, ib, ic)
                    circuit.mark_output(total)
                    circuit.mark_output(carry)
                    values = evaluate(circuit, {"a": a, "b": b, "c": cin})
                    expected = int(a) + int(b) + int(cin)
                    assert values[total] == bool(expected & 1)
                    assert values[carry] == bool(expected >> 1)

    @settings(max_examples=25, deadline=None)
    @given(
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
    )
    def test_ripple_adder_adds(self, a, b):
        width = 8
        circuit = Circuit()
        a_bits = [circuit.add_input(f"a{k}") for k in range(width)]
        b_bits = [circuit.add_input(f"b{k}") for k in range(width)]
        sums, carry = ripple_adder(circuit, NameScope(), a_bits, b_bits)
        for s in sums:
            circuit.mark_output(s)
        circuit.mark_output(carry)
        assignment = {f"a{k}": bool(a >> k & 1) for k in range(width)}
        assignment.update({f"b{k}": bool(b >> k & 1) for k in range(width)})
        values = evaluate(circuit, assignment)
        result = sum(int(values[s]) << k for k, s in enumerate(sums))
        result |= int(values[carry]) << width
        assert result == a + b

    def test_mismatched_widths_rejected(self):
        circuit = Circuit()
        a = circuit.add_input("a")
        with pytest.raises(CircuitError):
            ripple_adder(circuit, NameScope(), [a], [])


class TestMuxAndDecoder:
    @settings(max_examples=20, deadline=None)
    @given(
        select=st.integers(min_value=0, max_value=3),
        data=st.integers(min_value=0, max_value=15),
    )
    def test_mux_tree_selects(self, select, data):
        circuit = Circuit()
        selects = [circuit.add_input(f"s{k}") for k in range(2)]
        inputs = [circuit.add_input(f"d{k}") for k in range(4)]
        out = mux_tree(circuit, NameScope(), selects, inputs)
        circuit.mark_output(out)
        assignment = {f"s{k}": bool(select >> k & 1) for k in range(2)}
        assignment.update({f"d{k}": bool(data >> k & 1) for k in range(4)})
        values = evaluate(circuit, assignment)
        assert values[out] == bool(data >> select & 1)

    def test_mux_tree_width_check(self):
        circuit = Circuit()
        s = circuit.add_input("s")
        d = circuit.add_input("d")
        with pytest.raises(CircuitError):
            mux_tree(circuit, NameScope(), [s], [d])

    @pytest.mark.parametrize("code", range(8))
    def test_decoder_one_hot(self, code):
        circuit = Circuit()
        selects = [circuit.add_input(f"s{k}") for k in range(3)]
        outputs = decoder(circuit, NameScope(), selects)
        for out in outputs:
            circuit.mark_output(out)
        assignment = {f"s{k}": bool(code >> k & 1) for k in range(3)}
        values = evaluate(circuit, assignment)
        assert [values[o] for o in outputs] == [
            i == code for i in range(8)
        ]

    @settings(max_examples=20, deadline=None)
    @given(
        a=st.integers(min_value=0, max_value=63),
        b=st.integers(min_value=0, max_value=63),
    )
    def test_equality_comparator(self, a, b):
        circuit = Circuit()
        a_bits = [circuit.add_input(f"a{k}") for k in range(6)]
        b_bits = [circuit.add_input(f"b{k}") for k in range(6)]
        out = equality_comparator(circuit, NameScope(), a_bits, b_bits)
        circuit.mark_output(out)
        assignment = {f"a{k}": bool(a >> k & 1) for k in range(6)}
        assignment.update({f"b{k}": bool(b >> k & 1) for k in range(6)})
        values = evaluate(circuit, assignment)
        assert values[out] == (a == b)


class TestXorExpansion:
    @settings(max_examples=15, deadline=None)
    @given(bits=st.lists(st.booleans(), min_size=3, max_size=6),
           invert=st.booleans())
    def test_expansion_preserves_function(self, bits, invert):
        """XOR -> NAND rewriting (the c499 -> c1355 relationship) is
        functionally exact."""
        circuit = Circuit("x")
        inputs = [circuit.add_input(f"i{k}") for k in range(len(bits))]
        gtype = GateType.XNOR if invert else GateType.XOR
        out = circuit.add_gate("y", gtype, inputs)
        circuit.mark_output(out)
        expanded = expand_xor_to_nand(circuit)
        assignment = dict(zip((f"i{k}" for k in range(len(bits))), bits))
        original = evaluate(circuit, assignment)["y"]
        rewritten = evaluate(expanded, assignment)["y"]
        assert original == rewritten

    def test_expansion_removes_xor_gates(self, c17):
        from repro.circuit.ecc import sec_decoder

        expanded = expand_xor_to_nand(sec_decoder(4, 3, name="tiny"))
        counts = expanded.gate_type_counts()
        assert GateType.XOR not in counts
        assert GateType.XNOR not in counts
