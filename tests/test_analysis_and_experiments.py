"""Tests for analysis helpers and all experiment harnesses (fast scale)."""

import numpy as np
import pytest

from repro.analysis.correlation import correlate_reports, pearson
from repro.analysis.reports import format_percent, format_ratio, format_table
from repro.errors import AnalysisError
from repro.experiments.ablations import (
    run_pi_ablation,
    run_sample_count_ablation,
)
from repro.experiments.charge_sweep import run_charge_sweep
from repro.experiments.common import ExperimentScale
from repro.experiments.fig1_glitch_generation import run_fig1
from repro.experiments.fig2_glitch_propagation import run_fig2
from repro.experiments.fig3_c432_correlation import (
    correlation_for_circuit,
    run_fig3,
)
from repro.experiments.runtime_scaling import run_runtime_scaling
from repro.experiments.table1_optimization import PAPER_RESULTS


class TestCorrelationHelpers:
    def test_pearson_perfect(self):
        xs = np.array([1.0, 2.0, 3.0])
        assert pearson(xs, 2 * xs) == pytest.approx(1.0)
        assert pearson(xs, -xs) == pytest.approx(-1.0)

    def test_pearson_degenerate_is_zero(self):
        assert pearson(np.array([1.0, 1.0]), np.array([1.0, 2.0])) == 0.0

    def test_pearson_shape_checked(self):
        with pytest.raises(AnalysisError):
            pearson(np.array([1.0]), np.array([1.0, 2.0]))

    def test_correlate_reports_level_filter(self, c17, c17_analyzer):
        report = c17_analyzer.analyze().unreliability
        full = correlate_reports(c17, report, report)
        assert full.correlation == pytest.approx(1.0)
        shallow = correlate_reports(
            c17, report, report, max_levels_from_output=0
        )
        assert set(shallow.gate_names) == set(c17.outputs)


class TestReportRendering:
    def test_format_table_basic(self):
        text = format_table(("a", "b"), [(1, 2.5), ("x", 0.123)])
        lines = text.splitlines()
        assert lines[0].startswith("| a")
        assert len(lines) == 4

    def test_row_width_checked(self):
        with pytest.raises(AnalysisError):
            format_table(("a",), [(1, 2)])

    def test_percent_and_ratio(self):
        assert format_percent(0.4) == "40%"
        assert format_ratio(1.234) == "1.23X"


class TestFigureExperiments:
    def test_fig1_directions_match_paper(self):
        """Fig 1: slower gate => wider generated glitch, all four knobs."""
        result = run_fig1()
        assert result.series["size"].is_decreasing()
        assert result.series["length_nm"].is_increasing()
        assert result.series["vdd"].is_decreasing()
        assert result.series["vth"].is_increasing()
        assert not result.series["size"].is_constant()

    def test_fig2_directions_mirror_fig1(self):
        """Fig 2: slower gate => narrower propagated glitch."""
        result = run_fig2()
        assert result.series["size"].is_increasing()
        assert result.series["length_nm"].is_decreasing()
        assert result.series["vdd"].is_increasing()
        assert result.series["vth"].is_decreasing()

    def test_fig2_output_never_exceeds_input(self):
        result = run_fig2()
        for sweep in result.series.values():
            assert all(w <= result.input_width_ps for w in sweep.widths_ps)

    def test_fig3_correlation_positive_and_strong(self):
        scale = ExperimentScale(
            sensitization_vectors=1500,
            reference_vectors=15,
            optimizer_evaluations=10,
            circuits=("c432",),
            reference_circuits=("c432",),
        )
        result = correlation_for_circuit("c432", scale)
        assert result.correlation > 0.7  # paper: 0.96
        assert result.n_gates > 20

    def test_fig3_suite_runner(self):
        scale = ExperimentScale(
            sensitization_vectors=800,
            reference_vectors=8,
            optimizer_evaluations=10,
            circuits=("c17", "c432"),
            reference_circuits=("c17", "c432"),
        )
        result = run_fig3(scale, primary_circuit="c432")
        assert set(result.suite) == {"c17", "c432"}
        assert -1.0 <= result.suite_average <= 1.0


class TestAblationsAndSweeps:
    def test_pi_ablation_normalized_is_exact(self):
        result = run_pi_ablation(
            "c432",
            ExperimentScale(
                sensitization_vectors=800, reference_vectors=5,
                optimizer_evaluations=5, circuits=("c432",),
                reference_circuits=(),
            ),
        )
        assert result.max_deviation_normalized < 1e-6
        assert result.max_deviation_naive > result.max_deviation_normalized

    def test_sample_count_converges(self):
        result = run_sample_count_ablation(
            "c17",
            counts=(3, 5, 10),
            reference_k=30,
            scale=ExperimentScale(
                sensitization_vectors=500, reference_vectors=5,
                optimizer_evaluations=5, circuits=("c17",),
                reference_circuits=(),
            ),
        )
        assert result.relative_error(10) <= result.relative_error(3) + 1e-9

    def test_charge_sweep_monotone(self):
        result = run_charge_sweep(
            "c17",
            charges_fc=(2.0, 8.0, 32.0),
            scale=ExperimentScale(
                sensitization_vectors=500, reference_vectors=5,
                optimizer_evaluations=5, circuits=("c17",),
                reference_circuits=(),
            ),
        )
        assert result.is_nondecreasing()

    def test_runtime_scaling_rows(self):
        result = run_runtime_scaling(
            ExperimentScale(
                sensitization_vectors=500, reference_vectors=5,
                optimizer_evaluations=5, circuits=("c17", "c432"),
                reference_circuits=(),
            ),
        )
        assert [row.circuit for row in result.rows] == ["c17", "c432"]
        assert all(row.aserta_analyze_s > 0 for row in result.rows)
        # Bigger circuit, more work.
        assert result.rows[1].gates > result.rows[0].gates


class TestPaperReferenceData:
    def test_paper_results_recorded_for_table1(self):
        assert PAPER_RESULTS["c432"] == (2.0, 2.2, 1.23, 0.40)
        assert PAPER_RESULTS["c499"][3] == 0.0

    def test_scale_named(self):
        assert ExperimentScale.named("fast").circuits == ("c432", "c499")
        assert ExperimentScale.named("paper").sensitization_vectors == 10000
        with pytest.raises(AnalysisError):
            ExperimentScale.named("bogus")
