"""Campaign engine: spec expansion, store persistence/resume,
environment FIT scaling, serial-vs-parallel equivalence and the CLI."""

from __future__ import annotations

import json
import math
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import (
    AVIONICS,
    LEO_SPACE,
    SEA_LEVEL,
    CampaignRunner,
    CampaignSpec,
    Environment,
    ResultStore,
    ScenarioKey,
    ScenarioResult,
    environment,
    fit_per_mb,
    summarize,
)
from repro.campaign.spec import assignment_fingerprint
from repro.errors import CampaignError
from repro.tech.library import CellParams, ParameterAssignment

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def small_spec(**overrides) -> CampaignSpec:
    defaults = dict(
        circuits=("c17",),
        charges_fc=(4.0, 16.0),
        environments=(SEA_LEVEL, AVIONICS),
        n_vectors=200,
        seed=3,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


# ---------------------------------------------------------------- spec


class TestSpecExpansion:
    def test_size_and_order_deterministic(self):
        spec_a = small_spec(sample_width_counts=(5, 10))
        spec_b = small_spec(sample_width_counts=(5, 10))
        assert spec_a.size() == 1 * 2 * 2 * 1 * 2 == 8
        assert spec_a.scenarios() == spec_b.scenarios()
        assert spec_a.scenarios() == spec_a.scenarios()

    def test_digests_unique_across_grid(self):
        spec = small_spec(
            circuits=("c17", "c432"),
            assignments={
                "nominal": ParameterAssignment(),
                "hardened": ParameterAssignment(CellParams(size=2.0)),
            },
        )
        digests = [key.digest() for key in spec.scenarios()]
        assert len(digests) == len(set(digests)) == spec.size()

    def test_digest_stable_serialization(self):
        # Pinned digest: changing ScenarioKey serialization breaks every
        # existing store, so it must be a deliberate KEY_SCHEMA bump.
        spec = CampaignSpec(
            circuits=("c17",), charges_fc=(16.0,), environments=(SEA_LEVEL,),
            n_vectors=100, seed=7,
        )
        key = spec.scenarios()[0]
        assert key.digest() == (
            "fa4cb16f47f51568be8487a2c7e29d613fad99635a653430d9eafe5d116d68c9"
        )

    def test_key_json_round_trip(self):
        key = small_spec().scenarios()[-1]
        clone = ScenarioKey.from_json_dict(
            json.loads(json.dumps(key.to_json_dict()))
        )
        assert clone == key
        assert clone.digest() == key.digest()

    def test_assignment_content_changes_digest(self):
        base = small_spec().scenarios()[0]
        hardened = small_spec(
            assignments={"nominal": ParameterAssignment(CellParams(size=2.0))}
        ).scenarios()[0]
        assert base.assignment == hardened.assignment == "nominal"
        assert base.digest() != hardened.digest()

    def test_environment_content_changes_digest(self):
        tweaked = Environment(
            name="sea-level", flux_multiplier=2.0, duty_cycle=1.0
        )
        base = small_spec(environments=(SEA_LEVEL,)).scenarios()[0]
        other = small_spec(environments=(tweaked,)).scenarios()[0]
        assert base.environment == other.environment
        assert base.digest() != other.digest()
        # Cosmetic edits must NOT invalidate stored results.
        reworded = Environment(
            name="sea-level", description="same physics, new words"
        )
        assert reworded.fingerprint() == SEA_LEVEL.fingerprint()

    def test_validation(self):
        with pytest.raises(CampaignError):
            CampaignSpec(circuits=())
        with pytest.raises(CampaignError):
            small_spec(charges_fc=(4.0, 4.0))
        with pytest.raises(CampaignError):
            small_spec(environments=(SEA_LEVEL, SEA_LEVEL))
        with pytest.raises(CampaignError):
            small_spec(assignments={})
        with pytest.raises(CampaignError):
            small_spec(sample_width_counts=(1,))  # AsertaConfig floor is 2
        with pytest.raises(CampaignError):
            environment("alpha-centauri")

    def test_assignment_fingerprint_tracks_overrides(self):
        plain = ParameterAssignment()
        tweaked = ParameterAssignment()
        tweaked.set("g1", CellParams(size=2.0))
        assert assignment_fingerprint(plain) != assignment_fingerprint(tweaked)
        assert assignment_fingerprint(plain) == assignment_fingerprint(
            ParameterAssignment()
        )


# ---------------------------------------------------------- environments


class TestEnvironments:
    def test_fit_hand_computed(self):
        env = Environment(
            name="hand",
            flux_multiplier=2.0,
            duty_cycle=0.5,
            mission_hours=1e6,
            technology_node_nm=70.0,
            clock_period_ps=1000.0,
        )
        # FIT/Mb at 70 nm is tabulated as 800 => cell FIT = 800/1e6 * 2 * 0.5.
        assert env.cell_fit == pytest.approx(8.0e-4)
        # U = 5000 ps over a 1000 ps clock => 5 effective cells.
        fit = env.circuit_fit(5000.0)
        assert fit == pytest.approx(4.0e-3)
        rates = env.rates(5000.0)
        assert rates.fit == pytest.approx(fit)
        assert rates.mttf_hours == pytest.approx(1e9 / fit)
        assert rates.mission_upset_probability == pytest.approx(
            1.0 - math.exp(-fit * 1e-9 * 1e6)
        )

    def test_zero_unreliability_rates(self):
        rates = SEA_LEVEL.rates(0.0)
        assert rates.fit == 0.0
        assert rates.mttf_hours == math.inf
        assert rates.mission_upset_probability == 0.0

    def test_fit_per_mb_interpolation_and_clamping(self):
        assert fit_per_mb(70.0) == 800.0
        assert fit_per_mb(85.0) == pytest.approx(725.0)  # midway 70->100
        assert fit_per_mb(10.0) == 1000.0  # clamped below 45 nm
        assert fit_per_mb(500.0) == 120.0  # clamped above 250 nm
        with pytest.raises(CampaignError):
            fit_per_mb(0.0)

    def test_presets_ordering(self):
        # Harsher environments produce strictly higher FIT for the same U.
        fits = [env.circuit_fit(1000.0) for env in (SEA_LEVEL, AVIONICS, LEO_SPACE)]
        assert fits[0] < fits[1] < fits[2]

    def test_preset_validation(self):
        with pytest.raises(CampaignError):
            Environment(name="bad", flux_multiplier=0.0)
        with pytest.raises(CampaignError):
            Environment(name="bad", duty_cycle=1.5)


# ----------------------------------------------------------------- store


class TestResultStore:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "store.jsonl"
        spec = small_spec()
        outcome = CampaignRunner(spec, store=ResultStore(path)).run(parallel=False)
        assert outcome.computed == spec.size()

        reopened = ResultStore(path)
        assert len(reopened) == spec.size()
        for fresh in outcome.results:
            stored = reopened.get(fresh.digest())
            assert stored is not None
            assert stored.to_json_dict() == fresh.to_json_dict()

    def test_resume_skips_completed(self, tmp_path):
        path = tmp_path / "store.jsonl"
        spec = small_spec()
        first = CampaignRunner(spec, store=ResultStore(path)).run(parallel=False)
        again = CampaignRunner(spec, store=ResultStore(path)).run(parallel=False)
        assert first.computed == spec.size() and first.skipped == 0
        assert again.computed == 0 and again.skipped == spec.size()
        assert [r.to_json_dict() for r in again.results] == [
            r.to_json_dict() for r in first.results
        ]

    def test_partial_store_computes_only_missing(self, tmp_path):
        path = tmp_path / "store.jsonl"
        narrow = small_spec(charges_fc=(4.0,))
        CampaignRunner(narrow, store=ResultStore(path)).run(parallel=False)
        wide = small_spec(charges_fc=(4.0, 16.0))
        outcome = CampaignRunner(wide, store=ResultStore(path)).run(parallel=False)
        assert outcome.skipped == narrow.size()
        assert outcome.computed == wide.size() - narrow.size()

    def test_foreign_spec_results_are_not_skipped(self, tmp_path):
        """A store holding results for a *different* spec digest must not
        satisfy this campaign's scenarios — every axis change re-keys."""
        path = tmp_path / "store.jsonl"
        base = small_spec(charges_fc=(4.0,))
        CampaignRunner(base, store=ResultStore(path)).run(parallel=False)
        foreign_specs = {
            "charge": small_spec(charges_fc=(5.0,)),
            "n_vectors": small_spec(charges_fc=(4.0,), n_vectors=300),
            "seed": small_spec(charges_fc=(4.0,), seed=4),
            "sample_widths": small_spec(
                charges_fc=(4.0,), sample_width_counts=(8,)
            ),
            "assignment": small_spec(
                charges_fc=(4.0,),
                assignments={
                    "nominal": ParameterAssignment(
                        overrides={"22": CellParams(size=2.0)}
                    )
                },
            ),
            "environment": small_spec(
                charges_fc=(4.0,),
                environments=(
                    # Same name, different content: renaming-safe digests
                    # must treat this as new work.
                    Environment(name="sea-level", flux_multiplier=7.0),
                    Environment(name="avionics", flux_multiplier=900.0),
                ),
            ),
        }
        for axis, spec in foreign_specs.items():
            outcome = CampaignRunner(spec, store=ResultStore(path)).run(
                parallel=False
            )
            assert outcome.skipped == 0, f"{axis} change wrongly skipped"
            assert outcome.computed == spec.size(), axis
        # The original campaign still resumes cleanly from the same store.
        again = CampaignRunner(base, store=ResultStore(path)).run(parallel=False)
        assert again.computed == 0 and again.skipped == base.size()

    def test_torn_final_line_is_ignored(self, tmp_path):
        path = tmp_path / "store.jsonl"
        spec = small_spec()
        CampaignRunner(spec, store=ResultStore(path)).run(parallel=False)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "digest": "tru')  # crash artifact
        assert len(ResultStore(path)) == spec.size()

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text("not json\n{}\n", encoding="utf-8")
        with pytest.raises(CampaignError):
            ResultStore(path)

    def test_digest_mismatch_raises(self, tmp_path):
        path = tmp_path / "store.jsonl"
        spec = small_spec(charges_fc=(4.0,))
        CampaignRunner(spec, store=ResultStore(path)).run(parallel=False)
        record = json.loads(path.read_text().splitlines()[0])
        record["key"]["charge_fc"] = 99.0  # tamper without re-keying
        path.write_text(json.dumps(record) + "\n", encoding="utf-8")
        with pytest.raises(CampaignError):
            ResultStore(path)

    def test_in_memory_add_is_idempotent(self):
        store = ResultStore()
        spec = small_spec(charges_fc=(4.0,))
        outcome = CampaignRunner(spec, store=store).run(parallel=False)
        result = outcome.results[0]
        assert store.add(result) is False
        assert len(store) == spec.size()


# ---------------------------------------------------------------- runner


class TestRunner:
    def test_serial_parallel_equivalence_c17_c432(self, tmp_path):
        spec = CampaignSpec(
            circuits=("c17", "c432"),
            charges_fc=(4.0, 8.0, 16.0),
            environments=(SEA_LEVEL, AVIONICS),
            n_vectors=300,
            seed=3,
        )
        serial = CampaignRunner(spec, store=ResultStore()).run(parallel=False)
        parallel = CampaignRunner(
            spec, store=ResultStore(), max_workers=2
        ).run(parallel=True)
        assert serial.mode == "serial"
        # The pool may legitimately be unavailable in a sandbox, in which
        # case the runner falls back to serial — results must agree
        # either way.
        assert parallel.mode in ("serial", "parallel")
        assert serial.computed == parallel.computed == spec.size()

        def comparable(outcome):
            return [
                (
                    r.digest(),
                    r.unreliability_total,
                    r.fit,
                    r.mission_upset_probability,
                )
                for r in outcome.results
            ]

        assert comparable(serial) == comparable(parallel)

    # max_workers=4 pins the many-CPU regression: batches used to be
    # chunked for the worker count before the execution mode was known,
    # splitting environment pairs across chunks and recomputing the
    # shared analysis once per environment on >=4-CPU machines.
    @pytest.mark.parametrize("max_workers", [None, 1, 4])
    def test_environment_axis_shares_analysis(self, max_workers):
        spec = small_spec()
        outcome = CampaignRunner(
            spec, store=ResultStore(), max_workers=max_workers
        ).run(parallel=False)
        by_scenario = {}
        for result in outcome.results:
            key = (result.key.charge_fc, result.key.assignment)
            by_scenario.setdefault(key, []).append(result)
        for group in by_scenario.values():
            assert len(group) == 2  # one per environment
            # Same underlying analysis: identical U, only one timed run.
            assert group[0].unreliability_total == group[1].unreliability_total
            assert sum(1 for r in group if r.analyze_runtime_s > 0.0) == 1

    def test_serial_parallel_equivalence_through_array_path(self, tmp_path):
        """Multi-axis grid (assignments x charges x sample-width counts)
        through the vectorized analyze(): forced 2-worker pool and serial
        execution must agree result-for-result, and both must match a
        direct array-engine analysis outside the campaign machinery."""
        from repro.circuit.iscas85 import iscas85_circuit
        from repro.core.aserta import AsertaAnalyzer

        spec = CampaignSpec(
            circuits=("c17",),
            charges_fc=(8.0, 16.0),
            environments=(SEA_LEVEL,),
            assignments={
                "nominal": ParameterAssignment(),
                "hardened": ParameterAssignment(
                    default=CellParams(size=2.0, length_nm=100.0)
                ),
            },
            sample_width_counts=(6, 10),
            n_vectors=250,
            seed=7,
        )
        serial = CampaignRunner(spec, store=ResultStore()).run(parallel=False)
        pooled = CampaignRunner(spec, store=ResultStore(), max_workers=2).run(
            parallel=True
        )
        assert serial.computed == pooled.computed == spec.size()
        assert [(r.digest(), r.unreliability_total, r.fit) for r in serial.results] == [
            (r.digest(), r.unreliability_total, r.fit) for r in pooled.results
        ]
        # Cross-check one scenario against a direct array-path analysis.
        analyzer = AsertaAnalyzer(
            iscas85_circuit("c17"), spec.aserta_config(6)
        )
        direct = analyzer.analyze(
            spec.assignments["hardened"], charge_fc=8.0, n_sample_widths=6
        )
        by_key = {
            (
                r.key.assignment,
                r.key.charge_fc,
                r.key.n_sample_widths,
            ): r.unreliability_total
            for r in serial.results
        }
        assert by_key[("hardened", 8.0, 6)] == direct.total

    def test_outcome_accounting(self):
        spec = small_spec(charges_fc=(4.0,))
        outcome = CampaignRunner(spec, store=ResultStore()).run(parallel=False)
        assert outcome.workers == 1
        assert outcome.wall_s > 0.0
        assert outcome.scenarios_per_second > 0.0
        assert len(outcome.results) == spec.size()

    def test_bad_worker_count(self):
        with pytest.raises(CampaignError):
            CampaignRunner(small_spec(), max_workers=0)

    def test_non_picklable_assignment_falls_back_to_serial(self):
        class LocalAssignment(ParameterAssignment):
            """Defined in a function body, so pickle cannot locate it."""

        spec = small_spec(
            charges_fc=(4.0,), assignments={"nominal": LocalAssignment()}
        )
        outcome = CampaignRunner(spec, store=ResultStore(), max_workers=2).run(
            parallel=True
        )
        assert outcome.mode == "serial"
        assert outcome.computed == spec.size()


# ------------------------------------------------------------- summarize


class TestSummarize:
    def test_best_assignment_per_circuit_environment(self):
        spec = small_spec(
            assignments={
                "nominal": ParameterAssignment(),
                "hardened": ParameterAssignment(CellParams(size=2.0)),
            },
        )
        outcome = CampaignRunner(spec, store=ResultStore()).run(parallel=False)
        summary = summarize(outcome)
        best = summary.best_assignments()
        assert len(best) == 2  # one per (c17, environment)
        rankings = summary.rankings()
        for choice in best:
            peers = [
                r
                for r in rankings
                if (r.circuit, r.environment)
                == (choice.circuit, choice.environment)
            ]
            assert choice.mean_fit == min(peer.mean_fit for peer in peers)

    def test_tables_render(self):
        outcome = CampaignRunner(
            small_spec(charges_fc=(4.0,)), store=ResultStore()
        ).run(parallel=False)
        summary = summarize(outcome)
        assert "FIT" in summary.format_fit_table()
        assert "best assignment" in summary.format_best_table()

    def test_empty_results_raise(self):
        with pytest.raises(CampaignError):
            summarize([])


# ------------------------------------------------------------------- CLI


class TestCli:
    def run_cli(self, *args: str, cwd: Path) -> subprocess.CompletedProcess:
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.campaign", *args],
            capture_output=True,
            text=True,
            env=env,
            cwd=cwd,
            timeout=600,
        )

    def test_end_to_end_with_resume(self, tmp_path):
        store = tmp_path / "cli_store.jsonl"
        args = (
            "--circuits", "c17", "c432",
            "--charges", "2", "4", "8",
            "--environments", "sea-level", "leo-space",
            "--n-vectors", "200",
            "--seed", "2",
            "--serial",
            "--store", str(store),
        )
        first = self.run_cli(*args, cwd=tmp_path)
        assert first.returncode == 0, first.stderr
        assert "best assignment" in first.stdout
        assert "12 computed, 0 from store" in first.stdout
        assert len(store.read_text().splitlines()) == 12

        second = self.run_cli(*args, cwd=tmp_path)
        assert second.returncode == 0, second.stderr
        assert "0 computed, 12 from store" in second.stdout
        # The store was not grown by the resumed run.
        assert len(store.read_text().splitlines()) == 12

    def test_unknown_circuit_fails_cleanly(self, tmp_path):
        proc = self.run_cli(
            "--circuits", "c9999", "--n-vectors", "100", cwd=tmp_path
        )
        assert proc.returncode == 1
        assert "error:" in proc.stderr

    def test_duplicate_sizes_fail_cleanly(self, tmp_path):
        # "1" and "1.0" would silently collapse into one 'nominal'
        # assignment via dict-key overwrite; the CLI must reject them.
        proc = self.run_cli(
            "--circuits", "c17", "--sizes", "1", "1.0",
            "--n-vectors", "100", cwd=tmp_path,
        )
        assert proc.returncode == 1
        assert "duplicate --sizes" in proc.stderr


# -------------------------------------------------- experiment wrappers


class TestExperimentWrappers:
    def test_sample_count_ablation_tolerates_reference_in_counts(self):
        from repro.experiments.ablations import run_sample_count_ablation
        from repro.experiments.common import ExperimentScale

        scale = ExperimentScale(
            sensitization_vectors=200,
            reference_vectors=5,
            optimizer_evaluations=5,
            circuits=("c17",),
            reference_circuits=(),
        )
        result = run_sample_count_ablation(
            "c17", counts=(3, 10), reference_k=10, scale=scale
        )
        assert result.totals[10] == result.reference_total
        assert result.relative_error(10) == 0.0

    def test_charge_sweep_tolerates_duplicate_charges(self):
        from repro.experiments.charge_sweep import run_charge_sweep
        from repro.experiments.common import ExperimentScale

        scale = ExperimentScale(
            sensitization_vectors=200,
            reference_vectors=5,
            optimizer_evaluations=5,
            circuits=("c17",),
            reference_circuits=(),
        )
        result = run_charge_sweep("c17", (4.0, 8.0, 4.0), scale)
        assert set(result.totals_by_charge) == {4.0, 8.0}


# -------------------------------------------------- analysis-config axis


class TestAnalysisConfigAxis:
    def test_default_digests_unchanged_by_new_axis(self):
        """The pre-axis serialized form had no share_epsilon /
        structural_engine entries; defaults must serialize identically
        so old stores resume (the pinned-digest test above guards the
        exact value)."""
        key = small_spec().scenarios()[0]
        payload = key.to_json_dict()
        assert "share_epsilon" not in payload
        assert "structural_engine" not in payload

    def test_old_store_record_resumes_default_config_campaign(self, tmp_path):
        spec = CampaignSpec(
            circuits=("c17",), charges_fc=(16.0,), n_vectors=200, seed=3
        )
        first = CampaignRunner(
            spec, store=ResultStore(tmp_path / "store.jsonl")
        ).run(parallel=False)
        assert first.computed == 1
        # Rewrite the store as an "old" record: strip the (absent) new
        # fields to prove the serialized form is the historical one.
        text = (tmp_path / "store.jsonl").read_text()
        assert "share_epsilon" not in text
        resumed = CampaignRunner(
            spec, store=ResultStore(tmp_path / "store.jsonl")
        ).run(parallel=False)
        assert resumed.computed == 0 and resumed.skipped == 1

    def test_non_default_epsilon_changes_digest_and_group(self):
        base = small_spec().scenarios()[0]
        swept = small_spec(share_epsilon=0.05).scenarios()[0]
        assert swept.share_epsilon == 0.05
        assert base.digest() != swept.digest()
        assert base.structural_group() != swept.structural_group()
        clone = ScenarioKey.from_json_dict(
            json.loads(json.dumps(swept.to_json_dict()))
        )
        assert clone == swept and clone.digest() == swept.digest()

    def test_event_engine_axis(self):
        base = small_spec().scenarios()[0]
        event = small_spec(structural_engine="event").scenarios()[0]
        assert event.structural_engine == "event"
        assert base.digest() != event.digest()
        with pytest.raises(CampaignError):
            small_spec(structural_engine="magic")
        with pytest.raises(CampaignError):
            small_spec(share_epsilon=0.0)

    def test_epsilon_sweep_end_to_end(self):
        """A non-default epsilon flows through the runner into the
        analyzer: aggressive pruning can only lower (never raise) U."""
        default = CampaignRunner(
            small_spec(circuits=("c432",), n_vectors=400),
            store=ResultStore(),
        ).run(parallel=False)
        pruned = CampaignRunner(
            small_spec(circuits=("c432",), n_vectors=400, share_epsilon=0.2),
            store=ResultStore(),
        ).run(parallel=False)
        for before, after in zip(default.results, pruned.results):
            assert after.unreliability_total <= before.unreliability_total
        assert any(
            after.unreliability_total < before.unreliability_total
            for before, after in zip(default.results, pruned.results)
        )

    def test_cli_flags(self, tmp_path, capsys):
        from repro.campaign.__main__ import main

        code = main(
            [
                "--circuits", "c17",
                "--charges", "16",
                "--environments", "sea-level",
                "--n-vectors", "150",
                "--share-epsilon", "0.05",
                "--structural-engine", "event",
                "--store", str(tmp_path / "cli.jsonl"),
                "--serial",
            ]
        )
        assert code == 0
        record = json.loads((tmp_path / "cli.jsonl").read_text().splitlines()[0])
        assert record["key"]["share_epsilon"] == 0.05
        assert record["key"]["structural_engine"] == "event"


# ------------------------------------------------- parallel amortization


class TestParallelAmortization:
    def test_auto_mode_stays_serial_below_threshold(self):
        spec = small_spec()  # 4 analysis units, far below the threshold
        outcome = CampaignRunner(
            spec, store=ResultStore(), max_workers=2
        ).run(parallel=None)
        assert outcome.mode == "serial"

    def test_threshold_configurable(self):
        spec = small_spec()
        runner = CampaignRunner(
            spec, store=ResultStore(), max_workers=2, parallel_min_units=0
        )
        outcome = runner.run(parallel=None)
        # With the floor removed, auto mode may dispatch (or fall back
        # serially in a pool-less sandbox) — both must compute the grid.
        assert outcome.mode in ("serial", "parallel")
        assert outcome.computed == spec.size()
        with pytest.raises(CampaignError):
            CampaignRunner(spec, parallel_min_units=-1)

    def test_forced_parallel_ignores_threshold(self):
        spec = small_spec()
        outcome = CampaignRunner(
            spec, store=ResultStore(), max_workers=2
        ).run(parallel=True)
        assert outcome.mode in ("serial", "parallel")
        assert outcome.computed == spec.size()

    def test_serial_reuse_counters(self):
        from repro.campaign.runner import clear_analyzer_cache

        clear_analyzer_cache()
        spec = CampaignSpec(
            circuits=("c17", "c432"),
            charges_fc=(4.0, 8.0, 16.0),
            n_vectors=200,
            seed=3,
        )
        outcome = CampaignRunner(
            spec, store=ResultStore(), max_workers=4
        ).run(parallel=False)
        assert outcome.batch_stats, "serial run must report batch stats"
        final = outcome.batch_stats[-1]
        groups = {key.structural_group() for key in spec.scenarios()}
        assert final["analyzer_builds"] == len(groups)
        assert final["analyzer_reuses"] == len(outcome.batch_stats) - len(groups)
        clear_analyzer_cache()

    def test_batches_interleave_groups(self):
        spec = CampaignSpec(
            circuits=("c17", "c432"),
            charges_fc=(4.0, 8.0, 16.0, 20.0),
            n_vectors=200,
            seed=3,
        )
        runner = CampaignRunner(spec, store=ResultStore())
        batches = runner._batches(list(spec.scenarios()), workers=4)
        order = [batch[0][0] for batch in batches]  # circuit of each batch
        assert len(batches) == 4  # two chunks per circuit
        # Round-robin: the first two batches cover *different* circuits.
        assert order[0] != order[1]
        assert order[2] != order[3]

    def test_batch_stats_timing_fields_self_consistent(self):
        """Every batch reports its wall clock and the two phases inside
        it (analyzer build, analyze calls); the phases can never exceed
        the wall.  This is the accounting that explains where a slow
        campaign actually spends its time (see docs/observability.md)."""
        from repro.campaign.runner import clear_analyzer_cache

        clear_analyzer_cache()
        outcome = CampaignRunner(small_spec(), store=ResultStore()).run(
            parallel=False
        )
        assert outcome.batch_stats
        for stats in outcome.batch_stats:
            assert stats["wall_s"] > 0.0
            assert stats["analyzer_build_s"] >= 0.0
            assert stats["analyze_s"] > 0.0  # fresh run: analyses happened
            assert (
                stats["analyzer_build_s"] + stats["analyze_s"]
                <= stats["wall_s"] + 1e-9
            )
            assert stats["started_at_ns"] < stats["ended_at_ns"]
            assert stats["wall_s"] == pytest.approx(
                (stats["ended_at_ns"] - stats["started_at_ns"]) / 1e9
            )
        # Serial runs have no pool to spin up or results to ship back.
        assert outcome.pool_spinup_s == 0.0
        assert outcome.result_recv_s == 0.0
        clear_analyzer_cache()

    def test_parallel_overhead_accounting_when_pool_available(self):
        """Parallel outcomes decompose the wall time the merged trace
        shows: pool spin-up before the first worker batch starts, and
        result shipping after the last one ends."""
        outcome = CampaignRunner(
            small_spec(), store=ResultStore(), max_workers=2
        ).run(parallel=True)
        if outcome.mode != "parallel":
            pytest.skip("process pool unavailable in this sandbox")
        assert outcome.pool_spinup_s >= 0.0
        assert outcome.result_recv_s >= 0.0
        overhead = outcome.pool_spinup_s + outcome.result_recv_s
        assert overhead <= outcome.wall_s
        # Worker batch endpoints are perf_counter_ns values from other
        # processes; being monotonic machine-wide they must land inside
        # the runner's own window.
        for stats in outcome.batch_stats:
            assert stats["started_at_ns"] < stats["ended_at_ns"]

    def test_parallel_reuse_counters_when_pool_available(self):
        from repro.campaign.runner import clear_analyzer_cache

        spec = CampaignSpec(
            circuits=("c17", "c432"),
            charges_fc=(4.0, 8.0, 16.0, 20.0),
            n_vectors=200,
            seed=3,
        )
        clear_analyzer_cache()
        outcome = CampaignRunner(
            spec, store=ResultStore(), max_workers=4
        ).run(parallel=True)
        if outcome.mode != "parallel":
            pytest.skip("process pool unavailable in this sandbox")
        groups = {key.structural_group() for key in spec.scenarios()}
        builds = outcome.analyzer_builds_by_worker()
        assert builds, "parallel run must report per-worker stats"
        # Accounting invariant: every batch either built its group's
        # analyzer in its process or reused one — final per-worker
        # builds + reuses sum to the batch count exactly.
        final: dict[int, tuple[int, int]] = {}
        for stats in outcome.batch_stats:
            pid = stats["pid"]
            previous = final.get(pid, (0, 0))
            final[pid] = (
                max(previous[0], stats["analyzer_builds"]),
                max(previous[1], stats["analyzer_reuses"]),
            )
        total_builds = sum(b for b, __ in final.values())
        total_reuses = sum(r for __, r in final.values())
        assert total_builds + total_reuses == len(outcome.batch_stats)
        # No worker rebuilds a group it already compiled, and at least
        # one group is built per participating worker.
        for pid, count in builds.items():
            assert 1 <= count <= len(groups), (pid, count)
        clear_analyzer_cache()
