"""Tests for the synthetic generator and the ISCAS'85 registry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.generator import FLAVORS, GeneratorSpec, generate_circuit
from repro.circuit.iscas85 import (
    PUBLISHED_STATS,
    TABLE1_CIRCUITS,
    iscas85_circuit,
    iscas85_names,
    iscas85_stats,
)
from repro.errors import CircuitError


class TestGenerator:
    def test_deterministic(self):
        spec = GeneratorSpec("g", 8, 4, 60, 6, seed=42)
        first = generate_circuit(spec)
        second = generate_circuit(spec)
        assert {g.name: (g.gtype, g.fanins) for g in first} == {
            g.name: (g.gtype, g.fanins) for g in second
        }

    def test_seed_changes_structure(self):
        base = GeneratorSpec("g", 8, 4, 60, 6, seed=1)
        other = GeneratorSpec("g", 8, 4, 60, 6, seed=2)
        a = generate_circuit(base)
        b = generate_circuit(other)
        assert {g.name: g.fanins for g in a} != {g.name: g.fanins for g in b}

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=999),
        n_inputs=st.integers(min_value=2, max_value=20),
        n_outputs=st.integers(min_value=1, max_value=8),
        flavor=st.sampled_from(sorted(FLAVORS)),
    )
    def test_generated_circuits_are_well_formed(
        self, seed, n_inputs, n_outputs, flavor
    ):
        spec = GeneratorSpec(
            "wf", n_inputs, n_outputs, 80, 7, seed=seed, flavor=flavor
        )
        circuit = generate_circuit(spec)
        circuit.validate()
        assert len(circuit.inputs) == n_inputs
        assert len(circuit.outputs) == n_outputs
        assert not circuit.dangling_signals()

    def test_gate_budget_approximately_met(self):
        spec = GeneratorSpec("b", 20, 10, 400, 12, seed=7)
        circuit = generate_circuit(spec)
        assert 0.8 * 400 <= circuit.gate_count <= 1.25 * 400

    def test_bad_spec_rejected(self):
        with pytest.raises(CircuitError):
            GeneratorSpec("g", 0, 1, 10, 3, seed=0)
        with pytest.raises(CircuitError):
            GeneratorSpec("g", 2, 5, 3, 3, seed=0)
        with pytest.raises(CircuitError):
            GeneratorSpec("g", 2, 1, 10, 1, seed=0)
        with pytest.raises(CircuitError):
            GeneratorSpec("g", 2, 1, 10, 3, seed=0, flavor="nope")


class TestRegistry:
    def test_names_sorted_by_size(self):
        names = iscas85_names()
        assert names[0] == "c17" and names[-1] == "c7552"
        assert set(TABLE1_CIRCUITS) <= set(names)

    def test_stats_lookup(self):
        assert iscas85_stats("c432") == (36, 7, 160, 17)
        with pytest.raises(CircuitError):
            iscas85_stats("c9999")

    def test_unknown_circuit_rejected(self):
        with pytest.raises(CircuitError):
            iscas85_circuit("c9999")

    def test_c17_is_exact(self):
        c17 = iscas85_circuit("c17")
        assert c17.stats() == {
            "inputs": 5, "outputs": 2, "gates": 6, "depth": 3,
        }
        # Every gate of the published netlist is a 2-input NAND.
        assert all(g.gtype.value == "nand" for g in c17.gates())

    @pytest.mark.parametrize("name", iscas85_names())
    def test_published_io_counts_match(self, name):
        circuit = iscas85_circuit(name)
        inputs, outputs, __, __dep = PUBLISHED_STATS[name]
        assert len(circuit.inputs) == inputs
        assert len(circuit.outputs) == outputs

    @pytest.mark.parametrize("name", iscas85_names())
    def test_gate_counts_in_family(self, name):
        """Synthetic stand-ins land near the published gate counts
        (c6288's NOR-cell realization is the known outlier)."""
        circuit = iscas85_circuit(name)
        __, __o, gates, __d = PUBLISHED_STATS[name]
        tolerance = 0.45 if name in ("c6288", "c499", "c1355") else 0.25
        assert abs(circuit.gate_count - gates) <= tolerance * gates

    @pytest.mark.parametrize("name", iscas85_names())
    def test_all_members_validate(self, name):
        circuit = iscas85_circuit(name)
        circuit.validate()
        assert not circuit.dangling_signals()

    def test_cache_returns_copies(self):
        first = iscas85_circuit("c17")
        first.mark_output("10")
        second = iscas85_circuit("c17")
        assert len(second.outputs) == 2
