"""Functional tests for the SEC decoder (c499-like)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.ecc import data_bit_tags, encode_word, sec_decoder
from repro.errors import CircuitError
from repro.logicsim.bitsim import BitParallelSimulator


def run_decoder(circuit, data, check, enable=True):
    assignment = {f"d{i}": bool(b) for i, b in enumerate(data)}
    assignment.update({f"c{j}": bool(b) for j, b in enumerate(check)})
    assignment["en"] = enable
    values = BitParallelSimulator(circuit).simulate_one(assignment)
    return [values[f"q{i}"] for i in range(len(data))]


class TestTags:
    def test_tags_distinct_and_weighty(self):
        tags = data_bit_tags(32, 8)
        assert len(set(tags)) == 32
        assert all(bin(t).count("1") >= 2 for t in tags)

    def test_too_many_data_bits_rejected(self):
        with pytest.raises(CircuitError):
            data_bit_tags(100, 3)  # only C(3,2)+C(3,3)=4 tags available


class TestShape:
    def test_c499_shape(self):
        circuit = sec_decoder(32, 8, name="c499")
        stats = circuit.stats()
        assert stats["inputs"] == 41  # 32 data + 8 check + enable
        assert stats["outputs"] == 32

    def test_bad_parameters_rejected(self):
        with pytest.raises(CircuitError):
            sec_decoder(0, 8)
        with pytest.raises(CircuitError):
            sec_decoder(8, 1)


class TestCorrection:
    @settings(max_examples=25, deadline=None)
    @given(word=st.integers(min_value=0, max_value=255),
           flipped=st.integers(min_value=0, max_value=7))
    def test_single_data_error_corrected(self, word, flipped):
        """The defining property of c499: any single data-bit error is
        corrected back to the transmitted word."""
        circuit = sec_decoder(8, 5, name="sec85")
        data = [bool(word >> i & 1) for i in range(8)]
        check = encode_word(data, 5)
        corrupted = list(data)
        corrupted[flipped] = not corrupted[flipped]
        assert run_decoder(circuit, corrupted, check) == data

    @settings(max_examples=25, deadline=None)
    @given(word=st.integers(min_value=0, max_value=255))
    def test_clean_word_passes_through(self, word):
        circuit = sec_decoder(8, 5, name="sec85")
        data = [bool(word >> i & 1) for i in range(8)]
        check = encode_word(data, 5)
        assert run_decoder(circuit, data, check) == data

    @settings(max_examples=15, deadline=None)
    @given(word=st.integers(min_value=0, max_value=255),
           flipped=st.integers(min_value=0, max_value=4))
    def test_check_bit_error_leaves_data_alone(self, word, flipped):
        """Check-bit errors produce weight-1 syndromes, matching no tag."""
        circuit = sec_decoder(8, 5, name="sec85")
        data = [bool(word >> i & 1) for i in range(8)]
        check = encode_word(data, 5)
        check[flipped] = not check[flipped]
        assert run_decoder(circuit, data, check) == data

    @settings(max_examples=10, deadline=None)
    @given(word=st.integers(min_value=0, max_value=255),
           flipped=st.integers(min_value=0, max_value=7))
    def test_enable_low_disables_correction(self, word, flipped):
        circuit = sec_decoder(8, 5, name="sec85")
        data = [bool(word >> i & 1) for i in range(8)]
        check = encode_word(data, 5)
        corrupted = list(data)
        corrupted[flipped] = not corrupted[flipped]
        assert run_decoder(circuit, corrupted, check, enable=False) == corrupted

    def test_full_width_correction_spot_check(self):
        circuit = sec_decoder(32, 8, name="c499")
        data = [bool(i % 3 == 0) for i in range(32)]
        check = encode_word(data, 8)
        corrupted = list(data)
        corrupted[17] = not corrupted[17]
        assert run_decoder(circuit, corrupted, check) == data
