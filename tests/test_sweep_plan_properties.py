"""Hypothesis properties of the fused sweep plan.

Three invariants that must hold for *every* parameter assignment, not
just the hand-picked differential cases:

* **plan vs. unfused, bitwise** — the fused NumPy execution of the
  compiled :class:`~repro.core.sweep_plan.SweepPlan` reproduces the
  unfused per-level loop exactly, for any assignment the generator
  draws (single-candidate and population paths);
* **lane-permutation invariance** — lanes of the batched sweep are
  independent: permuting the candidate axis of every input permutes
  the output rows identically, bit for bit;
* **chunk invariance** — ``analyze_many``'s ``max_batch_bytes`` (and
  its :meth:`CostEvaluator.evaluate_batch` passthrough) is a pure
  execution knob: any chunking produces bitwise-identical totals.

Examples are deliberately few and the circuits small — each example
runs a full masking sweep; the value is in the random assignments, not
in volume.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conformance import (
    assert_fused_sweep_conforms_batch,
    assert_fused_sweep_conforms_single,
    mixed_assignments,
)
from repro.circuit.generator import GeneratorSpec, generate_circuit
from repro.core.aserta import AsertaAnalyzer, AsertaConfig
from repro.core.baseline import size_for_speed
from repro.core.cost import CostEvaluator
from repro.core.electrical_masking import (
    default_sample_widths_batch,
    electrical_masking_many,
)
from repro.tech.electrical_view import (
    batched_electrical_arrays,
    stack_cell_param_arrays,
)

SPEC = GeneratorSpec("plan-prop", 8, 4, 70, 6, seed=17, flavor="alu")
SETTINGS = dict(max_examples=12, deadline=None)

_CACHE: dict[str, AsertaAnalyzer] = {}


def _analyzer() -> AsertaAnalyzer:
    """One module-wide analyzer: every example reuses the structural
    simulation and the compiled sweep plan (that reuse under changing
    assignments is itself part of what is being tested)."""
    analyzer = _CACHE.get("plan-prop")
    if analyzer is None:
        analyzer = AsertaAnalyzer(
            generate_circuit(SPEC),
            AsertaConfig(n_vectors=128, seed=SPEC.seed, n_sample_widths=6),
        )
        _CACHE["plan-prop"] = analyzer
    return analyzer


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(**SETTINGS)
def test_plan_matches_unfused_single_bitwise(seed):
    analyzer = _analyzer()
    assignment = mixed_assignments(analyzer.circuit, seed, count=1)[0]
    assert_fused_sweep_conforms_single(analyzer, assignment, "numpy")


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(**SETTINGS)
def test_plan_matches_unfused_batch_bitwise(seed):
    analyzer = _analyzer()
    assignments = mixed_assignments(analyzer.circuit, seed, count=3)
    assert_fused_sweep_conforms_batch(analyzer, assignments, "numpy")


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    perm_seed=st.integers(min_value=0, max_value=2**16),
)
@settings(**SETTINGS)
def test_lane_permutation_invariance(seed, perm_seed):
    """Permuting the candidate axis of every input permutes the output
    rows identically — lanes never leak into each other."""
    analyzer = _analyzer()
    idx = analyzer.indexed
    assignments = mixed_assignments(analyzer.circuit, seed, count=4)
    params = stack_cell_param_arrays(idx, assignments)
    arrays = batched_electrical_arrays(
        analyzer.circuit, analyzer.tables, params,
        charge_fc=analyzer.config.charge_fc,
    )
    samples = default_sample_widths_batch(
        idx, arrays["delay_ps"], arrays["generated_width_ps"],
        analyzer.config.n_sample_widths,
    )
    expected = electrical_masking_many(
        analyzer.structure,
        arrays["delay_ps"],
        arrays["generated_width_ps"],
        samples,
        backend=analyzer.backend,
        plan=analyzer.sweep_plan,
    )
    perm = np.random.default_rng(perm_seed).permutation(len(assignments))
    permuted = electrical_masking_many(
        analyzer.structure,
        np.ascontiguousarray(arrays["delay_ps"][perm]),
        np.ascontiguousarray(arrays["generated_width_ps"][perm]),
        np.ascontiguousarray(samples[perm]),
        backend=analyzer.backend,
        plan=analyzer.sweep_plan,
    )
    np.testing.assert_array_equal(permuted, expected[perm])


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    max_batch_bytes=st.sampled_from([1, 4096, 1 << 14, 1 << 20, 1 << 28]),
)
@settings(**SETTINGS)
def test_chunking_invariance_of_analyze_many(seed, max_batch_bytes):
    analyzer = _analyzer()
    assignments = mixed_assignments(analyzer.circuit, seed, count=5)
    whole = analyzer.analyze_many(assignments)
    chunked = analyzer.analyze_many(
        assignments, max_batch_bytes=max_batch_bytes
    )
    # The batched contract: unreliability and delay are bit-identical;
    # energy/area reduce over chunk-shaped slices and may reassociate.
    np.testing.assert_array_equal(chunked.totals, whole.totals)
    np.testing.assert_array_equal(chunked.delay_ps, whole.delay_ps)
    np.testing.assert_allclose(chunked.energy_fj, whole.energy_fj, rtol=1e-9)
    np.testing.assert_allclose(chunked.area, whole.area, rtol=1e-9)


@pytest.fixture(scope="module")
def evaluator():
    analyzer = _analyzer()
    return CostEvaluator(analyzer, size_for_speed(analyzer.circuit))


@given(max_batch_bytes=st.sampled_from([1, 1 << 14, 1 << 28]))
@settings(max_examples=3, deadline=None)
def test_chunking_invariance_of_evaluate_batch(evaluator, max_batch_bytes):
    assignments = mixed_assignments(evaluator.analyzer.circuit, 31, count=4)
    whole = evaluator.evaluate_batch(assignments)
    chunked = evaluator.evaluate_batch(
        assignments, max_batch_bytes=max_batch_bytes
    )
    # Cost totals fold in the energy/area terms, which reassociate
    # across chunk widths — the contract here is 1e-9 relative.
    np.testing.assert_allclose(chunked, whole, rtol=1e-9)
