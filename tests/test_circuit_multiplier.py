"""Functional tests for the array multiplier (c6288-like)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.multiplier import array_multiplier
from repro.errors import CircuitError
from repro.logicsim.bitsim import BitParallelSimulator


def multiply(circuit, width, a, b):
    assignment = {f"a{k}": bool(a >> k & 1) for k in range(width)}
    assignment.update({f"b{k}": bool(b >> k & 1) for k in range(width)})
    values = BitParallelSimulator(circuit).simulate_one(assignment)
    return sum(int(values[f"p{k}"]) << k for k in range(2 * width))


class TestShape:
    def test_c6288_shape(self):
        circuit = array_multiplier(16, name="c6288")
        stats = circuit.stats()
        assert stats["inputs"] == 32
        assert stats["outputs"] == 32
        assert stats["gates"] > 1000

    def test_width_one_rejected(self):
        with pytest.raises(CircuitError):
            array_multiplier(1)


class TestFunction:
    @settings(max_examples=30, deadline=None)
    @given(a=st.integers(min_value=0, max_value=15),
           b=st.integers(min_value=0, max_value=15))
    def test_4x4_exhaustive_style(self, a, b):
        circuit = array_multiplier(4)
        assert multiply(circuit, 4, a, b) == a * b

    @settings(max_examples=12, deadline=None)
    @given(a=st.integers(min_value=0, max_value=255),
           b=st.integers(min_value=0, max_value=255))
    def test_8x8_random(self, a, b):
        circuit = array_multiplier(8)
        assert multiply(circuit, 8, a, b) == a * b

    @pytest.mark.parametrize(
        "a,b", [(0, 0), (65535, 65535), (65535, 1), (32768, 2), (257, 255)]
    )
    def test_16x16_corners(self, a, b):
        circuit = array_multiplier(16)
        assert multiply(circuit, 16, a, b) == a * b
