"""Unit tests for the Circuit netlist structure."""

import pytest

from repro.circuit.gate import GateType
from repro.circuit.netlist import Circuit
from repro.errors import CircuitCycleError, CircuitError, UnknownGateError


def build_small() -> Circuit:
    circuit = Circuit("small")
    circuit.add_input("a")
    circuit.add_input("b")
    circuit.add_gate("g1", GateType.AND, ["a", "b"])
    circuit.add_gate("g2", GateType.NOT, ["g1"])
    circuit.mark_output("g2")
    return circuit


class TestConstruction:
    def test_duplicate_signal_rejected(self):
        circuit = Circuit()
        circuit.add_input("a")
        with pytest.raises(CircuitError):
            circuit.add_input("a")
        with pytest.raises(CircuitError):
            circuit.add_gate("a", GateType.NOT, ["a"])

    def test_add_gate_rejects_input_type(self):
        circuit = Circuit()
        with pytest.raises(CircuitError):
            circuit.add_gate("x", GateType.INPUT, [])

    def test_duplicate_output_rejected(self):
        circuit = build_small()
        with pytest.raises(CircuitError):
            circuit.mark_output("g2")

    def test_unknown_gate_lookup_raises(self):
        circuit = build_small()
        with pytest.raises(UnknownGateError):
            circuit.gate("missing")

    def test_counts(self):
        circuit = build_small()
        assert len(circuit) == 4
        assert circuit.gate_count == 2
        assert circuit.inputs == ("a", "b")
        assert circuit.outputs == ("g2",)

    def test_contains(self):
        circuit = build_small()
        assert "g1" in circuit and "zz" not in circuit


class TestValidation:
    def test_valid_circuit_passes(self):
        build_small().validate()

    def test_missing_fanin_detected(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("g", GateType.AND, ["a", "ghost"])
        circuit.mark_output("g")
        with pytest.raises(UnknownGateError):
            circuit.validate()

    def test_cycle_detected(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("g1", GateType.AND, ["a", "g2"])
        circuit.add_gate("g2", GateType.NOT, ["g1"])
        circuit.mark_output("g2")
        with pytest.raises(CircuitCycleError):
            circuit.validate()

    def test_no_inputs_rejected(self):
        circuit = Circuit()
        with pytest.raises(CircuitError):
            circuit.validate()

    def test_undefined_output_rejected(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.mark_output("ghost")
        with pytest.raises(UnknownGateError):
            circuit.validate()


class TestDerivedStructure:
    def test_topological_order_respects_dependencies(self, diamond):
        order = diamond.topological_order()
        position = {name: i for i, name in enumerate(order)}
        for gate in diamond:
            for fanin in gate.fanins:
                assert position[fanin] < position[gate.name]

    def test_reverse_topological_is_reverse(self, diamond):
        assert diamond.reverse_topological_order() == tuple(
            reversed(diamond.topological_order())
        )

    def test_levels(self, diamond):
        levels = diamond.levels()
        assert levels["a"] == 0 and levels["b"] == 0
        assert levels["root"] == 1
        assert levels["top"] == 2 and levels["bottom"] == 2
        assert levels["out"] == 3
        assert diamond.depth() == 3

    def test_fanouts(self, diamond):
        assert set(diamond.fanouts("root")) == {"top", "bottom"}
        assert diamond.fanouts("out") == ()

    def test_fanin_cone(self, diamond):
        cone = diamond.fanin_cone("out")
        assert cone == {"out", "top", "bottom", "root", "a", "b"}

    def test_fanout_cone(self, diamond):
        assert diamond.fanout_cone("root") == {"root", "top", "bottom", "out"}

    def test_observable_outputs(self, two_output):
        assert two_output.observable_outputs("shared") == ("left", "right")
        assert two_output.observable_outputs("c") == ("left",)

    def test_levels_from_outputs(self, two_output):
        levels = two_output.levels_from_outputs()
        assert levels["left"] == 0 and levels["right"] == 0
        assert levels["shared"] == 1

    def test_dangling_signals(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_input("unused")
        circuit.add_gate("g", GateType.NOT, ["a"])
        circuit.mark_output("g")
        assert circuit.dangling_signals() == ("unused",)

    def test_cache_invalidation_on_mutation(self, diamond):
        first = diamond.topological_order()
        diamond.add_gate("extra", GateType.NOT, ["out"])
        second = diamond.topological_order()
        assert "extra" in second and "extra" not in first

    def test_copy_is_independent(self, diamond):
        duplicate = diamond.copy("dup")
        duplicate.add_gate("extra", GateType.NOT, ["out"])
        assert "extra" in duplicate and "extra" not in diamond

    def test_gate_type_counts(self, diamond):
        counts = diamond.gate_type_counts()
        assert counts[GateType.AND] == 1
        assert counts[GateType.NAND] == 1
        assert sum(counts.values()) == diamond.gate_count

    def test_stats(self, diamond):
        assert diamond.stats() == {
            "inputs": 2, "outputs": 1, "gates": 4, "depth": 3,
        }
