"""Tests for the per-circuit electrical annotation."""

import pytest

from repro.errors import TechnologyError
from repro.tech import constants as k
from repro.tech.electrical_view import CircuitElectrical
from repro.tech.library import CellParams, ParameterAssignment


class TestAnnotation:
    def test_every_logic_gate_annotated(self, c432, nominal, tables):
        view = CircuitElectrical(c432, nominal, tables=tables)
        for gate in c432.gates():
            assert view.delay_ps[gate.name] > 0.0
            assert view.generated_width_ps[gate.name] >= 0.0
            assert view.load_ff[gate.name] > 0.0
            assert view.output_ramp_ps[gate.name] > 0.0

    def test_primary_inputs_have_ramp_only(self, c17, nominal):
        view = CircuitElectrical(c17, nominal, use_tables=False)
        for name in c17.inputs:
            assert view.output_ramp_ps[name] == k.PRIMARY_INPUT_RAMP_PS
            assert name not in view.delay_ps

    def test_po_load_includes_latch(self, chain4, nominal):
        view = CircuitElectrical(chain4, nominal, use_tables=False)
        po = chain4.outputs[0]
        internal = "n0"
        assert view.load_ff[po] > view.load_ff[internal]
        assert view.load_ff[po] >= k.LATCH_CAP_FF

    def test_fanout_increases_load(self, diamond, nominal):
        view = CircuitElectrical(diamond, nominal, use_tables=False)
        # "root" drives two gates, "top" drives one.
        assert view.load_ff["root"] > view.load_ff["top"] - k.LATCH_CAP_FF

    def test_tables_and_continuous_agree_at_nominal(self, c17, nominal, tables):
        """The nominal cell sits on every grid axis, so table and model
        paths must coincide (up to load/ramp interpolation)."""
        with_tables = CircuitElectrical(c17, nominal, tables=tables)
        continuous = CircuitElectrical(c17, nominal, use_tables=False)
        for gate in c17.gates():
            assert with_tables.delay_ps[gate.name] == pytest.approx(
                continuous.delay_ps[gate.name], rel=0.1
            )

    def test_bigger_cells_widen_loads_upstream(self, chain4):
        small = ParameterAssignment()
        big = ParameterAssignment()
        big.set("n1", CellParams(size=4.0))
        view_small = CircuitElectrical(chain4, small, use_tables=False)
        view_big = CircuitElectrical(chain4, big, use_tables=False)
        assert view_big.load_ff["n0"] > view_small.load_ff["n0"]
        assert view_big.delay_ps["n0"] > view_small.delay_ps["n0"]

    def test_charge_validation(self, c17, nominal):
        with pytest.raises(TechnologyError):
            CircuitElectrical(c17, nominal, charge_fc=-1.0)
        with pytest.raises(TechnologyError):
            CircuitElectrical(c17, nominal, clock_period_ps=0.0)


class TestAggregates:
    def test_area_additive(self, c17, nominal):
        view = CircuitElectrical(c17, nominal, use_tables=False)
        assert view.total_area() == pytest.approx(
            sum(view.area_units.values())
        )

    def test_upsizing_increases_area(self, c17):
        nominal_view = CircuitElectrical(
            c17, ParameterAssignment(), use_tables=False
        )
        big = ParameterAssignment(default=CellParams(size=2.0))
        big_view = CircuitElectrical(c17, big, use_tables=False)
        assert big_view.total_area() == pytest.approx(
            2.0 * nominal_view.total_area()
        )

    def test_static_energy_scales_with_clock(self, c17, nominal):
        short = CircuitElectrical(
            c17, nominal, use_tables=False, clock_period_ps=500.0
        )
        long = CircuitElectrical(
            c17, nominal, use_tables=False, clock_period_ps=1000.0
        )
        assert long.static_energy_fj() == pytest.approx(
            2.0 * short.static_energy_fj()
        )

    def test_gate_size_reports_assignment(self, c17):
        assignment = ParameterAssignment()
        assignment.set("10", CellParams(size=3.0))
        view = CircuitElectrical(c17, assignment, use_tables=False)
        assert view.gate_size("10") == 3.0
        assert view.gate_size("11") == 1.0
