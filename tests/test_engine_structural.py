"""Differential tests of the batched structural engine.

The acceptance contract is *exact* equality: the batched fault-site
simulator and the event-driven seed estimator simulate the same packed
random vectors (same seed, same word layout), so every ``P_ij`` count —
and therefore every probability — must be bit-identical.  Asserted
across all 11 bundled ISCAS-85 circuits, the generator-family circuits
and the hand-built fixtures, at several fault-site block sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from conformance import assert_structural_bit_identical
from repro.circuit.generator import GeneratorSpec, generate_circuit
from repro.circuit.iscas85 import iscas85_circuit, iscas85_names
from repro.engine.structural import (
    CompiledStructuralCircuit,
    pick_block_sites,
    sparse_paths_from_matrix,
    structural_matrix,
    structural_matrix_batched,
    structural_matrix_event,
)
from repro.errors import SimulationError
from repro.logicsim.sensitization import (
    observability,
    observability_matrix,
    sensitization_matrix,
    sensitization_probabilities,
)

#: Two packed words, with a partial tail word — exercises lane masking.
N_VECTORS = 96
SEED = 7

GENERATOR_SPECS = [
    GeneratorSpec("eng-control", 6, 3, 40, 5, seed=2, flavor="control"),
    GeneratorSpec("eng-alu", 8, 4, 70, 6, seed=17, flavor="alu"),
    GeneratorSpec("eng-parity", 5, 2, 30, 4, seed=33, flavor="parity"),
    GeneratorSpec("eng-deep", 4, 2, 48, 12, seed=71, flavor="control"),
]


@pytest.mark.parametrize("name", iscas85_names())
def test_bit_identical_on_iscas(name):
    assert_structural_bit_identical(iscas85_circuit(name), N_VECTORS, SEED)


@pytest.mark.parametrize(
    "spec", GENERATOR_SPECS, ids=[s.name for s in GENERATOR_SPECS]
)
def test_bit_identical_on_generator_circuits(spec):
    assert_structural_bit_identical(generate_circuit(spec), 200, spec.seed)


@pytest.mark.parametrize("fixture", ["chain4", "diamond", "two_output"])
def test_bit_identical_on_fixtures(fixture, request):
    assert_structural_bit_identical(request.getfixturevalue(fixture), 70, 3)


@pytest.mark.parametrize("block_sites", [1, 3, 64, 10_000])
def test_block_size_never_changes_the_result(c432, block_sites):
    """Any site blocking (one site, tiny blocks, whole circuit at once)
    produces the same matrix — blocking is purely an execution knob."""
    reference = structural_matrix_batched(c432, N_VECTORS, seed=SEED)
    blocked = structural_matrix_batched(
        c432, N_VECTORS, seed=SEED, block_sites=block_sites
    )
    np.testing.assert_array_equal(blocked, reference)


def test_compiled_schedule_is_reusable(c432):
    compiled = CompiledStructuralCircuit(c432.indexed())
    a = structural_matrix_batched(c432, 64, seed=1, compiled=compiled)
    b = structural_matrix_batched(c432, 64, seed=2, compiled=compiled)
    c = structural_matrix_batched(c432, 64, seed=1, compiled=compiled)
    np.testing.assert_array_equal(a, c)
    assert not np.array_equal(a, b), "different seeds must differ"


def test_compiled_schedule_rejects_foreign_circuit(c17, chain4):
    compiled = CompiledStructuralCircuit(chain4.indexed())
    with pytest.raises(SimulationError):
        structural_matrix_batched(c17, 64, compiled=compiled)


def test_matrix_shape_diagonal_and_inputs(two_output):
    idx = two_output.indexed()
    p = structural_matrix_batched(two_output, 128, seed=0)
    assert p.shape == (idx.n_signals, idx.n_outputs)
    # P_jj = 1 on every primary output, regardless of vectors.
    diagonal = p[idx.output_rows, idx.col_of_row[idx.output_rows]]
    np.testing.assert_array_equal(diagonal, 1.0)
    # Primary-input rows are estimated too (the transient reference
    # simulator shares the site list with the seed estimator).
    assert p[: len(two_output.inputs)].any()
    assert np.all(p >= 0.0) and np.all(p <= 1.0)


def test_sparse_view_round_trips_exactly(c17):
    """Dense -> sparse matches the seed estimator dict exactly, and
    sparse -> dense recovers the matrix losslessly."""
    idx = c17.indexed()
    p = structural_matrix_batched(c17, 500, seed=1)
    sparse = sparse_paths_from_matrix(idx, p)
    assert sparse == sensitization_probabilities(c17, 500, seed=1)
    np.testing.assert_array_equal(idx.output_matrix(sparse), p)


def test_dispatch_and_wrapper(c17):
    batched = structural_matrix(c17, 128, seed=2, engine="batched")
    event = structural_matrix(c17, 128, seed=2, engine="event")
    np.testing.assert_array_equal(batched, event)
    with pytest.raises(SimulationError):
        structural_matrix(c17, 128, engine="bogus")
    # The logicsim compatibility wrapper routes through the same code.
    np.testing.assert_array_equal(
        sensitization_matrix(c17, 128, seed=2), batched
    )
    np.testing.assert_array_equal(
        sensitization_matrix(c17, 128, seed=2, engine="event"), batched
    )


def test_rejects_bad_arguments(c17, chain4):
    from repro.logicsim.bitsim import BitParallelSimulator

    with pytest.raises(SimulationError):
        structural_matrix_batched(c17, 0)
    with pytest.raises(SimulationError):
        structural_matrix_batched(c17, 64, block_sites=0)
    with pytest.raises(SimulationError):
        structural_matrix_batched(c17, 64, simulator=BitParallelSimulator(chain4))


def test_pick_block_sites_respects_budget():
    assert pick_block_sites(1000, 100, max_block_bytes=1 << 20) == 1
    assert pick_block_sites(10, 1, max_block_bytes=1 << 30) == 256
    assert pick_block_sites(1000, 100, max_block_bytes=0) == 1


class TestObservabilitySharedImplementation:
    def test_dict_view_matches_matrix_view(self, c432):
        paths = sensitization_probabilities(c432, 300, seed=4)
        obs = observability(paths)
        idx = c432.indexed()
        dense = observability_matrix(idx.output_matrix(paths))
        assert set(obs) == set(idx.order)
        for row, name in enumerate(idx.order):
            assert obs[name] == pytest.approx(dense[row], rel=1e-12, abs=0.0)

    def test_clipped_to_one_and_po_is_one(self, c17):
        paths = sensitization_probabilities(c17, 300, seed=4)
        obs = observability(paths)
        assert all(0.0 <= value <= 1.0 for value in obs.values())
        for out in c17.outputs:
            assert obs[out] == 1.0

    def test_analyzer_observability_routes_through_matrix(self, c17_analyzer):
        obs = c17_analyzer.observability()
        dense = observability_matrix(c17_analyzer.p_matrix)
        idx = c17_analyzer.indexed
        assert obs == {
            name: float(dense[row]) for row, name in enumerate(idx.order)
        }


class TestSiteMasks:
    """Per-row active-site masks: live pairs only, bit-identical."""

    def test_site_matrix_matches_reachability(self, c432):
        compiled = CompiledStructuralCircuit(c432.indexed())
        idx = c432.indexed()
        rows = idx.gate_rows[:40]
        mask = compiled.site_matrix(10, 42, rows)
        assert mask.shape == (32, rows.size)
        # Row-wise OR over sites must agree with the block candidates
        # restricted to these rows (same own-site exclusion rule).
        candidate = compiled.candidates(10, 42)
        np.testing.assert_array_equal(mask.any(axis=0), candidate[rows])

    def test_forced_sparse_path_bit_identical(self, c432):
        """Small blocks on a reconvergent circuit drive pair density
        low, forcing the gathered-pair branch; the counts must still be
        exactly the event-driven estimator's."""
        import repro.engine.structural as st

        original = st.SITE_MASK_MAX_DENSITY
        try:
            st.SITE_MASK_MAX_DENSITY = 1.0  # every multi-site block
            sparse = structural_matrix_batched(
                c432, N_VECTORS, seed=SEED, block_sites=8
            )
        finally:
            st.SITE_MASK_MAX_DENSITY = original
        np.testing.assert_array_equal(
            sparse, structural_matrix_event(c432, N_VECTORS, seed=SEED)
        )

    def test_forced_dense_path_bit_identical(self, c432):
        import repro.engine.structural as st

        original = st.SITE_MASK_MAX_DENSITY
        try:
            st.SITE_MASK_MAX_DENSITY = -1.0  # never take the pair branch
            dense = structural_matrix_batched(
                c432, N_VECTORS, seed=SEED, block_sites=8
            )
        finally:
            st.SITE_MASK_MAX_DENSITY = original
        np.testing.assert_array_equal(
            dense, structural_matrix_event(c432, N_VECTORS, seed=SEED)
        )
