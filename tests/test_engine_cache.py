"""Compiled-artifact cache: hits, misses, invalidation, disk round-trip.

The acceptance bar for the cache half of the engine: a warm
``AsertaAnalyzer`` construction (same circuit content, same protocol)
performs **zero fault-simulation work** — asserted through the engine's
``structural_sim_runs`` counter and the cache's per-kind hit counters —
and any change to the netlist, the vector count or the seed changes the
artifact key, so stale artifacts are unreachable by construction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign.runner import CampaignRunner, clear_analyzer_cache
from repro.campaign.spec import CampaignSpec
from repro.circuit.gate import GateType
from repro.circuit.iscas85 import iscas85_circuit
from repro.core.aserta import AsertaAnalyzer, AsertaConfig
from repro.engine import (
    AnalysisEngine,
    ArtifactCache,
    EngineError,
    get_default_engine,
    p_matrix_key,
    set_default_engine,
)

CONFIG = AsertaConfig(n_vectors=300, seed=5, n_sample_widths=4)


@pytest.fixture()
def engine() -> AnalysisEngine:
    return AnalysisEngine()


class TestArtifactKeys:
    def test_key_is_stable_across_copies(self, c432):
        assert p_matrix_key(c432, 100, 0) == p_matrix_key(c432.copy(), 100, 0)
        # ... and across renames (content-addressed, not name-addressed).
        assert p_matrix_key(c432, 100, 0) == p_matrix_key(
            c432.copy(name="other"), 100, 0
        )

    def test_key_changes_on_netlist_edit(self, c17):
        edited = c17.copy()
        edited.add_gate("extra", GateType.NOT, ["22"])
        edited.mark_output("extra")
        assert p_matrix_key(c17, 100, 0) != p_matrix_key(edited, 100, 0)

    def test_key_changes_on_protocol(self, c17):
        base = p_matrix_key(c17, 100, 0)
        assert base != p_matrix_key(c17, 101, 0)  # n_vectors axis
        assert base != p_matrix_key(c17, 100, 1)  # seed axis


class TestArtifactCacheLRU:
    def test_hit_miss_and_eviction_counters(self):
        cache = ArtifactCache(max_entries=2)
        assert cache.get("a-1") is None
        cache.put("a-1", "one")
        cache.put("b-2", "two")
        assert cache.get("a-1") == "one"
        cache.put("c-3", "three")  # evicts b-2 (a-1 was touched)
        assert cache.get("b-2") is None
        assert cache.get("a-1") == "one"
        assert cache.stats.hits == 2
        assert cache.stats.misses == 2
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_rejects_bad_bounds(self):
        with pytest.raises(EngineError):
            ArtifactCache(max_entries=0)
        with pytest.raises(EngineError):
            AnalysisEngine(cache=ArtifactCache(), cache_dir="x")
        with pytest.raises(EngineError):
            AnalysisEngine(structural="bogus")

    def test_get_or_build_builds_once(self):
        cache = ArtifactCache()
        calls: list[int] = []

        def build():
            calls.append(1)
            return {"v": np.arange(3)}

        first = cache.get_or_build_arrays("p_matrix-xyz", build)
        second = cache.get_or_build_arrays("p_matrix-xyz", build)
        assert len(calls) == 1
        assert first is second


class TestDiskTier:
    def test_round_trip_through_a_fresh_cache(self, tmp_path):
        arrays = {"p_matrix": np.linspace(0.0, 1.0, 12).reshape(3, 4)}
        writer = ArtifactCache(cache_dir=tmp_path)
        writer.get_or_build_arrays("p_matrix-abc", lambda: arrays)
        assert writer.stats.disk_writes == 1

        reader = ArtifactCache(cache_dir=tmp_path)
        loaded = reader.get_or_build_arrays(
            "p_matrix-abc", lambda: pytest.fail("must be served from disk")
        )
        np.testing.assert_array_equal(loaded["p_matrix"], arrays["p_matrix"])
        assert reader.stats.disk_hits == 1
        # Promoted into memory: the second read does not touch the disk.
        reader.get_or_build_arrays("p_matrix-abc", lambda: pytest.fail("cached"))
        assert reader.stats.disk_hits == 1

    def test_wrong_key_or_corrupt_file_is_a_miss(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path)
        cache.store_arrays("p_matrix-good", {"v": np.ones(2)})
        # A file whose embedded header names another key is ignored ...
        path = cache._path_for("p_matrix-good")
        (path.parent / "p_matrix-other.npz").write_bytes(path.read_bytes())
        assert cache.load_arrays("p_matrix-other") is None
        # ... and a truncated file rebuilds instead of crashing.
        path.write_bytes(b"not an npz archive")
        assert cache.load_arrays("p_matrix-good") is None
        rebuilt = cache.get_or_build_arrays(
            "p_matrix-good", lambda: {"v": np.zeros(2)}
        )
        np.testing.assert_array_equal(rebuilt["v"], np.zeros(2))

    def test_memory_only_cache_never_touches_disk(self):
        cache = ArtifactCache()
        cache.store_arrays("p_matrix-abc", {"v": np.ones(2)})
        assert cache.stats.disk_writes == 0
        assert cache.load_arrays("p_matrix-abc") is None


class TestWarmAnalyzer:
    def test_warm_construction_does_zero_fault_simulation(self, engine):
        circuit = iscas85_circuit("c432")
        first = AsertaAnalyzer(circuit, CONFIG, engine=engine)
        assert engine.structural_sim_runs == 1

        warm = AsertaAnalyzer(iscas85_circuit("c432"), CONFIG, engine=engine)
        assert engine.structural_sim_runs == 1, "warm analyzer re-simulated"
        assert engine.cache.stats.by_kind["p_matrix"]["hits"] >= 1
        np.testing.assert_array_equal(warm.p_matrix, first.p_matrix)
        assert warm.analyze().total == pytest.approx(
            first.analyze().total, rel=1e-12
        )

    def test_cached_p_matrix_is_immutable(self, engine):
        """One ndarray is aliased by every analyzer of a circuit, so an
        in-place write (say, a careless what-if study) must fail loudly
        instead of silently corrupting all later analyzers."""
        analyzer = AsertaAnalyzer(iscas85_circuit("c17"), CONFIG, engine=engine)
        with pytest.raises((ValueError, RuntimeError)):
            analyzer.p_matrix[:] = 0.0

    def test_protocol_change_misses(self, engine):
        circuit = iscas85_circuit("c17")
        AsertaAnalyzer(circuit, CONFIG, engine=engine)
        AsertaAnalyzer(
            circuit, AsertaConfig(n_vectors=301, seed=5, n_sample_widths=4),
            engine=engine,
        )
        AsertaAnalyzer(
            circuit, AsertaConfig(n_vectors=300, seed=6, n_sample_widths=4),
            engine=engine,
        )
        assert engine.structural_sim_runs == 3

    def test_event_and_batched_share_one_artifact(self, engine):
        circuit = iscas85_circuit("c17")
        batched = AsertaAnalyzer(circuit, CONFIG, engine=engine)
        event_config = AsertaConfig(
            n_vectors=300, seed=5, n_sample_widths=4, structural_engine="event"
        )
        event = AsertaAnalyzer(circuit, event_config, engine=engine)
        # Bit-identical by contract, so the key is engine-independent
        # and the second analyzer is a pure cache hit.
        assert engine.structural_sim_runs == 1
        np.testing.assert_array_equal(event.p_matrix, batched.p_matrix)

    def test_disk_tier_survives_process_boundaries(self, tmp_path):
        """Simulated process restart: a brand-new engine over the same
        cache directory serves the structural pass from disk."""
        cold = AnalysisEngine(cache_dir=tmp_path / "artifacts")
        circuit = iscas85_circuit("c432")
        before = AsertaAnalyzer(circuit, CONFIG, engine=cold)
        assert cold.structural_sim_runs == 1

        fresh = AnalysisEngine(cache_dir=tmp_path / "artifacts")
        after = AsertaAnalyzer(iscas85_circuit("c432"), CONFIG, engine=fresh)
        assert fresh.structural_sim_runs == 0, "disk tier was not used"
        assert fresh.cache.stats.disk_hits >= 1
        np.testing.assert_array_equal(after.p_matrix, before.p_matrix)
        assert after.analyze().total == pytest.approx(
            before.analyze().total, rel=1e-12
        )

    def test_default_engine_is_process_wide_and_resettable(self):
        previous = set_default_engine(None)
        try:
            a = get_default_engine()
            assert get_default_engine() is a
            analyzer = AsertaAnalyzer(iscas85_circuit("c17"), CONFIG)
            assert analyzer.engine is a
            set_default_engine(None)
            assert get_default_engine() is not a
        finally:
            set_default_engine(previous)


class TestCampaignCacheDir:
    def test_campaign_reuses_on_disk_artifacts(self, tmp_path):
        spec = CampaignSpec(
            circuits=("c17",),
            charges_fc=(8.0, 16.0),
            n_vectors=300,
            seed=5,
            cache_dir=str(tmp_path / "artifacts"),
        )
        clear_analyzer_cache()
        first = CampaignRunner(spec).run(parallel=False)
        assert first.computed == 2
        cache_files = list((tmp_path / "artifacts").rglob("*.npz"))
        assert cache_files, "campaign wrote no artifacts"

        # "New process": all in-memory caches dropped, fresh store.
        clear_analyzer_cache()
        from repro.campaign.runner import _engine_for

        second = CampaignRunner(spec).run(parallel=False)
        engine = _engine_for(spec.cache_dir)
        assert engine.structural_sim_runs == 0
        assert engine.cache.stats.disk_hits >= 1
        assert [r.unreliability_total for r in second.results] == [
            r.unreliability_total for r in first.results
        ]
        clear_analyzer_cache()

    def test_cache_dir_does_not_change_scenario_digests(self, tmp_path):
        plain = CampaignSpec(circuits=("c17",), n_vectors=300)
        cached = CampaignSpec(
            circuits=("c17",), n_vectors=300, cache_dir=str(tmp_path)
        )
        assert [k.digest() for k in plain.scenarios()] == [
            k.digest() for k in cached.scenarios()
        ]


class TestDiskBudget:
    """`max_disk_bytes`: LRU-by-mtime eviction of the on-disk tier."""

    @staticmethod
    def _artifact(i: int, kib: int = 8) -> dict:
        return {"values": np.full(kib * 128, float(i))}  # ~1 KiB * kib

    def test_validation(self, tmp_path):
        with pytest.raises(EngineError):
            ArtifactCache(cache_dir=tmp_path, max_disk_bytes=0)
        with pytest.raises(EngineError):
            ArtifactCache(max_disk_bytes=1024)  # no cache_dir to bound
        with pytest.raises(EngineError):
            AnalysisEngine(cache=ArtifactCache(), max_disk_bytes=1024)

    def test_lru_eviction_under_tiny_cap(self, tmp_path):
        import time as _time

        cache = ArtifactCache(
            cache_dir=tmp_path, max_disk_bytes=20 * 1024
        )
        for i in range(5):
            cache.get_or_build_arrays(
                f"kind-{i:02d}", lambda i=i: self._artifact(i)
            )
            _time.sleep(0.01)  # distinct mtimes on coarse filesystems
        files = sorted(p.name for p in tmp_path.rglob("*.npz"))
        # ~8 KiB each under a 20 KiB cap: only the most recent survive.
        assert cache.stats.disk_evictions >= 3
        assert f"kind-04.npz" in files
        assert f"kind-00.npz" not in files
        total = sum(p.stat().st_size for p in tmp_path.rglob("*.npz"))
        assert total <= 20 * 1024

    def test_newest_artifact_never_self_evicts(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path, max_disk_bytes=1)
        cache.get_or_build_arrays("kind-a", lambda: self._artifact(0))
        files = list(tmp_path.rglob("*.npz"))
        assert [p.name for p in files] == ["kind-a.npz"]

    def test_disk_hit_refreshes_recency(self, tmp_path):
        import time as _time

        cache = ArtifactCache(cache_dir=tmp_path, max_disk_bytes=20 * 1024)
        cache.get_or_build_arrays("kind-old", lambda: self._artifact(0))
        _time.sleep(0.02)
        cache.get_or_build_arrays("kind-mid", lambda: self._artifact(1))
        _time.sleep(0.02)
        # Re-read "old" through a fresh cache (disk hit -> touched).
        reader = ArtifactCache(cache_dir=tmp_path, max_disk_bytes=20 * 1024)
        assert reader.get_or_build_arrays(
            "kind-old", lambda: self._artifact(9)
        )["values"][0] == 0.0
        assert reader.stats.disk_hits == 1
        _time.sleep(0.02)
        reader.get_or_build_arrays("kind-new", lambda: self._artifact(2))
        names = {p.name for p in tmp_path.rglob("*.npz")}
        # "mid" is now the least recently used and is evicted first.
        assert "kind-old.npz" in names
        assert "kind-mid.npz" not in names

    def test_concurrent_delete_tolerated(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path, max_disk_bytes=4 * 1024)
        cache.get_or_build_arrays("kind-x", lambda: self._artifact(0))
        for path in tmp_path.rglob("*.npz"):
            path.unlink()  # another process evicted everything
        # The next write re-scans a directory whose files are gone.
        cache.get_or_build_arrays("kind-y", lambda: self._artifact(1))
        assert any(p.name == "kind-y.npz" for p in tmp_path.rglob("*.npz"))

    def test_counter_in_snapshot(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path, max_disk_bytes=1)
        cache.get_or_build_arrays("kind-a", lambda: self._artifact(0))
        cache.get_or_build_arrays("kind-b", lambda: self._artifact(1))
        snapshot = cache.stats.snapshot()
        assert snapshot["disk_evictions"] == cache.stats.disk_evictions >= 1

    def test_engine_passthrough(self, tmp_path):
        engine = AnalysisEngine(cache_dir=tmp_path, max_disk_bytes=123456)
        assert engine.cache.max_disk_bytes == 123456
