"""Analysis invariants, property-tested across *all* bundled ISCAS circuits.

Three paper-level properties must hold on every benchmark circuit, not
just c17:

* **Lemma 1** — a glitch wide enough to traverse any gate unattenuated
  arrives with expected width ``w * P_ij`` (the widest sample width is
  constructed to sit in that regime);
* **monotonicity in charge** — injecting more charge can only widen the
  generated glitches (the LUT is monotone in its charge axis), so the
  circuit unreliability is non-decreasing in the injected charge;
* **``P_jj = 1``** — a strike on a primary-output gate is latched
  regardless of the random vectors.

Vector counts are deliberately small: these are structural properties
that hold for any ``P_ij`` estimate, and the largest bundled circuits
(c6288, c7552) are thousands of gates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.iscas85 import iscas85_circuit, iscas85_names
from repro.core.aserta import AsertaAnalyzer, AsertaConfig
from repro.core.masking import DEFAULT_SHARE_EPSILON, masking_structure
from repro.errors import AnalysisError

ALL_CIRCUITS = iscas85_names()
N_VECTORS = 128
SEED = 11


@pytest.fixture(scope="session")
def analyzer_cache():
    cache: dict[str, AsertaAnalyzer] = {}

    def get(name: str) -> AsertaAnalyzer:
        analyzer = cache.get(name)
        if analyzer is None:
            analyzer = AsertaAnalyzer(
                iscas85_circuit(name),
                AsertaConfig(n_vectors=N_VECTORS, seed=SEED, n_sample_widths=6),
            )
            cache[name] = analyzer
        return analyzer

    return get


@pytest.mark.parametrize("name", ALL_CIRCUITS)
def test_po_diagonal_is_one(name, analyzer_cache):
    """P_jj = 1 on every primary output of every bundled circuit."""
    analyzer = analyzer_cache(name)
    circuit = analyzer.circuit
    for output in circuit.outputs:
        assert analyzer.sensitized_paths[output][output] == 1.0
    # ... and the dense view agrees.
    idx = analyzer.indexed
    diagonal = analyzer.structure.p_matrix[
        idx.output_rows, idx.col_of_row[idx.output_rows]
    ]
    np.testing.assert_array_equal(diagonal, 1.0)


@pytest.mark.parametrize("name", ALL_CIRCUITS)
def test_lemma1_wide_glitch_regime(name, analyzer_cache):
    """W_ij -> w_i * P_ij for the widest sample, on every circuit.

    On the deepest benchmarks a fraction of routes is dropped by the
    Equation-2 denominator cutoff (sensitization products underflow
    ``_EPSILON`` on long gate chains), which can only *lose* width — so
    the lemma is asserted as an exact upper bound everywhere plus exact
    equality on the (overwhelming) majority of surviving routes.
    """
    analyzer = analyzer_cache(name)
    report = analyzer.analyze()
    masking = report.masking
    assert masking.arrays is not None
    idx = analyzer.indexed
    wide = masking.sample_widths[-1]
    p = analyzer.structure.p_matrix
    internal = ~idx.is_input & ~idx.is_output
    top = masking.arrays.ws[:, :, -1]
    mask = internal[:, np.newaxis] & (p > 0.0)
    assert mask.any(), "no internal gate reaches an output"
    arrived = top[mask]
    bound = wide * p[mask]
    assert np.all(arrived <= bound * (1.0 + 1e-9))
    equal = np.isclose(arrived, bound, rtol=1e-6)
    assert equal.mean() > 0.98, f"lemma holds on only {equal.mean():.2%}"


@pytest.mark.parametrize("name", ALL_CIRCUITS)
def test_equation2_share_identity_dense(name, analyzer_cache):
    """sum_s pi_isj * P_sj = P_ij wherever the route denominator
    survives the underflow cutoff — the normalization Lemma 1 rests on,
    checked on the dense structure of every bundled circuit."""
    analyzer = analyzer_cache(name)
    structure = analyzer.structure
    idx = analyzer.indexed
    p = structure.p_matrix
    recovered = np.zeros_like(p)
    np.add.at(
        recovered,
        idx.edge_src,
        structure.edge_shares * p[idx.edge_dst],
    )
    internal = ~idx.is_input & ~idx.is_output
    routed = recovered[internal] > 0.0
    assert routed.any()
    np.testing.assert_allclose(
        recovered[internal][routed], p[internal][routed], rtol=1e-9
    )


@pytest.mark.parametrize("name", ALL_CIRCUITS)
def test_share_epsilon_is_tunable(name, analyzer_cache):
    """The Equation-2 route-dropping cutoff is a real knob.

    Rebuilding the dense structure with a (much) smaller epsilon can
    only *keep more* routes — never fewer — and the share identity
    ``sum_s pi_isj P_sj = P_ij`` must hold on every surviving route at
    either setting.  No new simulation is needed: the structure is a
    pure function of the cached ``P_ij`` matrix.
    """
    analyzer = analyzer_cache(name)
    circuit = analyzer.circuit
    tiny = 1e-300
    assert tiny < DEFAULT_SHARE_EPSILON
    default = analyzer.structure
    loose = masking_structure(
        circuit,
        analyzer.probabilities,
        indexed=analyzer.indexed,
        p_matrix=analyzer.p_matrix,
        epsilon=tiny,
    )
    routed_default = default.edge_shares > 0.0
    routed_loose = loose.edge_shares > 0.0
    # Monotone: every route surviving the default cutoff survives the
    # tiny one.
    assert np.all(routed_loose | ~routed_default)
    idx = analyzer.indexed
    for structure in (default, loose):
        recovered = np.zeros_like(structure.p_matrix)
        np.add.at(
            recovered,
            idx.edge_src,
            structure.edge_shares * structure.p_matrix[idx.edge_dst],
        )
        internal = ~idx.is_input & ~idx.is_output
        routed = recovered[internal] > 0.0
        np.testing.assert_allclose(
            recovered[internal][routed],
            structure.p_matrix[internal][routed],
            rtol=1e-9,
        )


def test_share_epsilon_prunes_weak_routes(analyzer_cache):
    """A non-default cutoff genuinely changes the analysis.

    The deepest chains lose routes to *exact-zero* denominators (the
    sensitization products underflow double precision entirely), which
    no epsilon can recover — but raising epsilon prunes weakly-routed
    edges on every deep bundled circuit, the Equation-2 identity keeps
    holding on the survivors, and the Lemma-1 *upper bound* survives a
    full analyze() because dropping routes can only lose width.
    """
    strict_eps = 0.05
    pruned_somewhere = False
    for name in ("c6288", "c7552", "c3540"):
        analyzer = analyzer_cache(name)
        strict = masking_structure(
            analyzer.circuit,
            analyzer.probabilities,
            indexed=analyzer.indexed,
            p_matrix=analyzer.p_matrix,
            epsilon=strict_eps,
        )
        kept_default = np.count_nonzero(analyzer.structure.edge_shares)
        kept_strict = np.count_nonzero(strict.edge_shares)
        assert kept_strict <= kept_default
        pruned_somewhere |= kept_strict < kept_default
        # Survivors still satisfy sum_s pi_isj * P_sj = P_ij.
        idx = analyzer.indexed
        recovered = np.zeros_like(strict.p_matrix)
        np.add.at(
            recovered,
            idx.edge_src,
            strict.edge_shares * strict.p_matrix[idx.edge_dst],
        )
        internal = ~idx.is_input & ~idx.is_output
        routed = recovered[internal] > 0.0
        np.testing.assert_allclose(
            recovered[internal][routed],
            strict.p_matrix[internal][routed],
            rtol=1e-9,
        )
    assert pruned_somewhere, "epsilon=0.05 pruned no routes anywhere"

    # End to end: the widest sample still arrives under w * P_ij.
    analyzer = analyzer_cache("c6288")
    strict_analyzer = AsertaAnalyzer(
        analyzer.circuit,
        analyzer.config,
        engine=analyzer.engine,
        share_epsilon=strict_eps,
    )
    report = strict_analyzer.analyze()
    masking = report.masking
    assert masking.arrays is not None
    idx = strict_analyzer.indexed
    wide = masking.sample_widths[-1]
    p = strict_analyzer.structure.p_matrix
    mask = (~idx.is_input & ~idx.is_output)[:, np.newaxis] & (p > 0.0)
    arrived = masking.arrays.ws[:, :, -1][mask]
    assert np.all(arrived <= wide * p[mask] * (1.0 + 1e-9))


def test_share_epsilon_flows_through_the_analyzer():
    """``AsertaAnalyzer(share_epsilon=...)`` reaches the Equation-2
    structure (and is validated), without re-running the simulation."""
    from repro.engine import AnalysisEngine

    engine = AnalysisEngine()
    circuit = iscas85_circuit("c6288")
    config = AsertaConfig(n_vectors=N_VECTORS, seed=SEED, n_sample_widths=4)
    default = AsertaAnalyzer(circuit, config, engine=engine)
    loose = AsertaAnalyzer(
        circuit, config, engine=engine, share_epsilon=1e-300
    )
    assert engine.structural_sim_runs == 1, "epsilon must not re-simulate"
    assert loose.share_epsilon == 1e-300
    assert np.count_nonzero(loose.structure.edge_shares) >= np.count_nonzero(
        default.structure.edge_shares
    )
    # The config route and the kwarg route are equivalent.
    via_config = AsertaAnalyzer(
        circuit,
        AsertaConfig(
            n_vectors=N_VECTORS, seed=SEED, n_sample_widths=4,
            share_epsilon=1e-300,
        ),
        engine=engine,
    )
    np.testing.assert_array_equal(
        via_config.structure.edge_shares, loose.structure.edge_shares
    )
    with pytest.raises(AnalysisError):
        AsertaAnalyzer(circuit, config, share_epsilon=0.0)
    with pytest.raises(AnalysisError):
        AsertaConfig(share_epsilon=-1.0)


@pytest.mark.parametrize("name", ALL_CIRCUITS)
def test_unreliability_monotone_in_charge(name, analyzer_cache):
    """More injected charge never decreases the circuit unreliability."""
    analyzer = analyzer_cache(name)
    totals = [
        analyzer.analyze(charge_fc=q).total for q in (0.0, 8.0, 16.0, 32.0)
    ]
    assert totals[0] == 0.0
    for lower, higher in zip(totals, totals[1:]):
        assert higher >= lower
