"""Batched SERTOPT: optimizer-budget accounting and flow equivalence.

The contract under test: with a batched objective, the deterministic
coordinate driver visits *identical points in identical order on an
identical budget* as the scalar driver — speculative population probes
never count — and the end-to-end ``Sertopt.optimize`` flow returns the
same ``OptimizeResult.x``/``evaluations`` with per-evaluation costs
equal to 1e-9 relative.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.iscas85 import iscas85_circuit
from repro.core.aserta import AsertaConfig
from repro.core.optimizers import (
    minimize_annealing,
    minimize_coordinate,
    minimize_slsqp,
    run_optimizer,
)
from repro.core.sertopt import Sertopt, SertoptConfig
from repro.errors import OptimizationError
from repro.tech.library import CellLibrary


class _Plateau:
    """A piecewise-constant objective (like the matched cost surface):
    floors create exact ties, the worst case for trajectory equality."""

    def __init__(self):
        self.calls: list[np.ndarray] = []

    def value(self, x: np.ndarray) -> float:
        quantized = np.floor(np.asarray(x) / 7.0)
        return float(np.sum(quantized**2) + 0.25 * np.sum(np.abs(quantized)))

    def __call__(self, x: np.ndarray) -> float:
        self.calls.append(np.array(x))
        return self.value(x)

    def batch(self, X: np.ndarray, base: np.ndarray | None = None) -> np.ndarray:
        self.calls.append(np.array(X))
        return np.array([self.value(x) for x in X])


class TestCoordinateBatchedAccounting:
    def test_identical_points_budget_and_result(self):
        for budget in (7, 23, 60, 150):
            serial_obj = _Plateau()
            serial = minimize_coordinate(
                serial_obj, np.full(6, 3.0), 50.0, budget, seed=4
            )
            batched_obj = _Plateau()
            batched = minimize_coordinate(
                batched_obj,
                np.full(6, 3.0),
                50.0,
                budget,
                seed=4,
                objective_batch=batched_obj.batch,
            )
            assert serial.evaluations == batched.evaluations, budget
            assert serial.history == batched.history, budget
            np.testing.assert_array_equal(serial.x, batched.x)
            assert serial.value == batched.value

    def test_speculative_probes_do_not_count(self):
        obj = _Plateau()
        result = minimize_coordinate(
            obj, np.zeros(8), 40.0, 10, seed=0, objective_batch=obj.batch
        )
        assert result.evaluations == 10
        assert len(result.history) == 10
        # The batch calls evaluated more points than were counted —
        # that is the speculation; the budget only sees the replay.
        evaluated = sum(
            c.shape[0] if c.ndim == 2 else 1 for c in obj.calls
        )
        assert evaluated >= result.evaluations

    def test_chunk_size_invariant(self):
        reference = None
        for chunk in (1, 3, 8, 64):
            obj = _Plateau()
            result = minimize_coordinate(
                obj,
                np.full(5, -2.0),
                30.0,
                40,
                seed=9,
                objective_batch=obj.batch,
                batch_chunk=chunk,
            )
            if reference is None:
                reference = result
            else:
                assert result.history == reference.history
                np.testing.assert_array_equal(result.x, reference.x)

    def test_bad_chunk_rejected(self):
        obj = _Plateau()
        with pytest.raises(OptimizationError):
            minimize_coordinate(
                obj, np.zeros(2), 1.0, 5,
                objective_batch=obj.batch, batch_chunk=0,
            )


class TestOtherDriversBatched:
    @staticmethod
    def quadratic(x):
        return float(np.sum((x - 1.0) ** 2))

    def batch(self, X, base=None):
        return np.array([self.quadratic(x) for x in X])

    def test_annealing_budget_and_best_tracking(self):
        result = minimize_annealing(
            self.quadratic, np.zeros(3), 5.0, 37, seed=1,
            objective_batch=self.batch,
        )
        assert result.evaluations == 37
        assert len(result.history) == 37
        assert self.quadratic(result.x) == pytest.approx(result.value)
        assert result.value <= self.quadratic(np.zeros(3))

    def test_slsqp_batched_gradient_improves(self):
        result = minimize_slsqp(
            self.quadratic, np.zeros(3), 5.0, 200, fd_step=0.1,
            objective_batch=self.batch,
        )
        assert result.value < 0.05
        assert result.evaluations <= 200

    def test_dispatch_passes_batch(self):
        for method in ("slsqp", "annealing", "coordinate"):
            result = run_optimizer(
                method, self.quadratic, np.zeros(2), 5.0, 30, seed=2,
                objective_batch=self.batch,
            )
            assert result.evaluations <= 30


class TestSertoptFlowEquivalence:
    @pytest.fixture(scope="class")
    def pair(self):
        circuit = iscas85_circuit("c432")
        library = CellLibrary.paper_library(vdds=(0.8, 1.0), vths=(0.2, 0.3))
        shared = dict(
            max_evaluations=50,
            seed=0,
            aserta=AsertaConfig(n_vectors=1200, seed=0),
        )
        serial = Sertopt(
            circuit, library=library,
            config=SertoptConfig(batched_evaluation=False, **shared),
        ).optimize()
        batched = Sertopt(
            circuit, library=library,
            config=SertoptConfig(batched_evaluation=True, **shared),
        ).optimize()
        return serial, batched

    def test_identical_search_trajectory(self, pair):
        serial, batched = pair
        np.testing.assert_array_equal(
            serial.optimizer_result.x, batched.optimizer_result.x
        )
        assert (
            serial.optimizer_result.evaluations
            == batched.optimizer_result.evaluations
        )

    def test_costs_within_tolerance(self, pair):
        serial, batched = pair
        hs = np.array(serial.optimizer_result.history)
        hb = np.array(batched.optimizer_result.history)
        assert hs.shape == hb.shape
        assert float(np.max(np.abs(hs - hb) / np.abs(hs))) <= 1e-9

    def test_same_optimized_assignment(self, pair):
        serial, batched = pair
        circuit = iscas85_circuit("c432")
        for gate in circuit.gates():
            assert serial.optimized_assignment[gate.name] == (
                batched.optimized_assignment[gate.name]
            )
        assert serial.unreliability_reduction == pytest.approx(
            batched.unreliability_reduction, rel=1e-9
        )

    def test_use_tables_false_falls_back_to_serial_objective(self):
        """The population pipeline is table-path only; a continuous-model
        analyzer must quietly keep the serial objective instead of
        crashing on the first evaluation."""
        circuit = iscas85_circuit("c17")
        config = SertoptConfig(
            max_evaluations=8,
            seed=1,
            aserta=AsertaConfig(n_vectors=300, seed=1, use_tables=False),
        )
        result = Sertopt(circuit, config=config).optimize()
        assert result.optimizer_result.evaluations <= 8
        assert result.optimized.total <= result.baseline.total + 1e-9

    def test_batched_annealing_runs_and_respects_budget(self):
        circuit = iscas85_circuit("c432")
        library = CellLibrary.paper_library(vdds=(0.8, 1.0), vths=(0.2, 0.3))
        config = SertoptConfig(
            optimizer="annealing",
            max_evaluations=25,
            seed=3,
            aserta=AsertaConfig(n_vectors=800, seed=3),
        )
        result = Sertopt(circuit, library=library, config=config).optimize()
        assert result.optimizer_result.evaluations <= 25
        assert result.optimized.total <= result.baseline.total + 1e-9
