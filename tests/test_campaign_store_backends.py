"""Store backend layer: crash-tolerant JSONL appends, the overwrite /
compact ordering contract, the SQLite backend, concurrent writers from
several processes, and cross-backend merge/summary equivalence."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import (
    AVIONICS,
    SEA_LEVEL,
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    ScenarioResult,
    merge_stores,
    summarize,
)
from repro.errors import CampaignError

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def small_spec(**overrides) -> CampaignSpec:
    defaults = dict(
        circuits=("c17",),
        charges_fc=(4.0, 16.0),
        environments=(SEA_LEVEL, AVIONICS),
        n_vectors=200,
        seed=3,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def synthetic_results(n: int) -> list[ScenarioResult]:
    """``n`` distinct results with fabricated metrics (no analysis run)."""
    spec = small_spec(charges_fc=tuple(float(q) for q in range(1, n + 1)))
    keys = [k for k in spec.scenarios() if k.environment == "sea-level"][:n]
    assert len(keys) == n
    return [
        ScenarioResult(
            key=key,
            unreliability_total=float(i),
            fit=float(i) * 10.0,
            mission_upset_probability=0.5,
            analyze_runtime_s=0.0,
        )
        for i, key in enumerate(keys)
    ]


# ------------------------------------------------------- torn-line guard


class TestTornLineAppendGuard:
    def test_append_after_torn_line_keeps_both_recoverable(self, tmp_path):
        """A crash mid-write followed by a later append used to
        concatenate two records into one invalid line, turning a
        recoverable resume into a hard load error."""
        path = tmp_path / "store.jsonl"
        a, b = synthetic_results(2)
        store = ResultStore(path)
        store.add(a)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "digest": "tru')  # torn: no newline
        resumed = ResultStore(path)
        assert len(resumed) == 1  # torn fragment ignored
        resumed.add(b)  # the append that used to corrupt the file
        final = ResultStore(path)
        assert {r.digest() for r in final.results()} == {
            a.digest(), b.digest()
        }

    def test_crash_then_resume_via_runner(self, tmp_path):
        path = tmp_path / "store.jsonl"
        spec = small_spec()
        CampaignRunner(spec, store=ResultStore(path)).run(parallel=False)
        lines = path.read_text(encoding="utf-8").splitlines()
        # Simulate a crash mid-append of the final record.
        path.write_text(
            "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2],
            encoding="utf-8",
        )
        outcome = CampaignRunner(spec, store=ResultStore(path)).run(
            parallel=False
        )
        assert outcome.computed == 1  # only the torn scenario redone
        assert outcome.skipped == spec.size() - 1
        # The resumed file is fully loadable, every line valid JSON.
        for line in path.read_text(encoding="utf-8").splitlines():
            json.loads(line)
        assert len(ResultStore(path)) == spec.size()


# --------------------------------------------- overwrite/compact contract


class TestOverwriteAndCompact:
    def _overwritten(self, result: ScenarioResult) -> ScenarioResult:
        return ScenarioResult(
            key=result.key,
            unreliability_total=result.unreliability_total + 100.0,
            fit=result.fit,
            mission_upset_probability=result.mission_upset_probability,
            analyze_runtime_s=result.analyze_runtime_s,
        )

    @pytest.mark.parametrize("suffix", ["jsonl", "sqlite"])
    def test_overwrite_is_last_wins_first_position(self, tmp_path, suffix):
        """The ordering contract: an overwrite updates the value but
        keeps the digest's original position, and a replayed store
        reproduces the live store's sequence exactly."""
        path = tmp_path / f"store.{suffix}"
        a, b, c = synthetic_results(3)
        store = ResultStore(path)
        for r in (a, b, c):
            store.add(r)
        new_a = self._overwritten(a)
        assert store.add(new_a, overwrite=True) is True
        live = [(r.digest(), r.unreliability_total) for r in store.results()]
        replayed = [
            (r.digest(), r.unreliability_total)
            for r in ResultStore(path).results()
        ]
        assert live == replayed
        assert live[0] == (a.digest(), new_a.unreliability_total)
        assert [d for d, __ in live] == [r.digest() for r in (a, b, c)]

    def test_jsonl_compact_drops_superseded_lines(self, tmp_path):
        path = tmp_path / "store.jsonl"
        a, b = synthetic_results(2)
        store = ResultStore(path)
        store.add(a)
        store.add(b)
        for __ in range(5):  # unbounded growth before the fix
            store.add(self._overwritten(a), overwrite=True)
        assert len(path.read_text(encoding="utf-8").splitlines()) == 7
        dropped = store.compact()
        assert dropped == 5
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        compacted = ResultStore(path)
        assert [r.digest() for r in compacted.results()] == [
            a.digest(), b.digest()
        ]
        assert compacted.get(a.digest()).unreliability_total == (
            a.unreliability_total + 100.0
        )
        assert store.compact() == 0  # idempotent

    def test_sqlite_never_accumulates_duplicates(self, tmp_path):
        path = tmp_path / "store.sqlite"
        (a,) = synthetic_results(1)
        with ResultStore(path) as store:
            store.add(a)
            for __ in range(5):
                store.add(self._overwritten(a), overwrite=True)
            assert len(store) == 1
            assert store.compact() == 0
        assert len(ResultStore(path)) == 1

    def test_memory_store_compact_is_noop(self):
        store = ResultStore()
        (a,) = synthetic_results(1)
        store.add(a)
        assert store.compact() == 0


# ------------------------------------------------------- SQLite backend


class TestSqliteBackend:
    def test_suffix_selects_backend(self, tmp_path):
        assert ResultStore(tmp_path / "s.sqlite").backend_name == "sqlite"
        assert ResultStore(tmp_path / "s.sqlite3").backend_name == "sqlite"
        assert ResultStore(tmp_path / "s.db").backend_name == "sqlite"
        assert ResultStore(tmp_path / "s.jsonl").backend_name == "jsonl"
        assert ResultStore().backend_name == "memory"
        # Explicit override beats the suffix.
        assert (
            ResultStore(tmp_path / "x.dat", backend="sqlite").backend_name
            == "sqlite"
        )
        with pytest.raises(CampaignError):
            ResultStore(tmp_path / "x.jsonl", backend="postgres")

    def test_round_trip_and_lookup_without_replay(self, tmp_path):
        path = tmp_path / "store.sqlite"
        results = synthetic_results(5)
        with ResultStore(path) as store:
            for r in results:
                store.add(r)
        reopened = ResultStore(path)
        # Point lookups and membership are index hits — no replay has
        # populated the in-memory dict.
        assert reopened._results == {}
        assert results[3].digest() in reopened
        got = reopened.get(results[3].digest())
        assert got.to_json_dict() == results[3].to_json_dict()
        assert len(reopened) == 5
        assert reopened.digests() == {r.digest() for r in results}
        assert [r.digest() for r in reopened.results()] == [
            r.digest() for r in results
        ]

    def test_runner_resume_on_sqlite(self, tmp_path):
        path = tmp_path / "campaign.sqlite"
        spec = small_spec()
        first = CampaignRunner(spec, store=ResultStore(path)).run(
            parallel=False
        )
        again = CampaignRunner(spec, store=ResultStore(path)).run(
            parallel=False
        )
        assert first.computed == spec.size() and first.skipped == 0
        assert again.computed == 0 and again.skipped == spec.size()
        assert [r.to_json_dict() for r in again.results] == [
            r.to_json_dict() for r in first.results
        ]

    def test_corrupt_file_raises_campaign_error(self, tmp_path):
        path = tmp_path / "store.sqlite"
        path.write_bytes(b"this is not a database at all" * 20)
        with pytest.raises(CampaignError):
            ResultStore(path).results()

    def test_jsonl_and_sqlite_summaries_identical(self, tmp_path):
        spec = small_spec()
        jsonl = ResultStore(tmp_path / "s.jsonl")
        sqlite = ResultStore(tmp_path / "s.sqlite")
        CampaignRunner(spec, store=jsonl).run(parallel=False)
        CampaignRunner(spec, store=sqlite).run(parallel=False)
        table_j = summarize(ResultStore(tmp_path / "s.jsonl").results())
        table_s = summarize(ResultStore(tmp_path / "s.sqlite").results())
        assert table_j.format_fit_table() == table_s.format_fit_table()
        assert table_j.format_best_table() == table_s.format_best_table()


# ------------------------------------------------------------- merging


class TestMerge:
    @pytest.mark.parametrize(
        "src_suffix,dst_suffix",
        [("jsonl", "jsonl"), ("jsonl", "sqlite"), ("sqlite", "jsonl")],
    )
    def test_merge_across_backends(self, tmp_path, src_suffix, dst_suffix):
        results = synthetic_results(6)
        shard_a = ResultStore(tmp_path / f"a.{src_suffix}")
        shard_b = ResultStore(tmp_path / f"b.{src_suffix}")
        for r in results[:4]:
            shard_a.add(r)
        for r in results[2:]:  # overlaps shard_a on 2 digests
            shard_b.add(r)
        dest = merge_stores(
            tmp_path / f"merged.{dst_suffix}",
            [tmp_path / f"a.{src_suffix}", tmp_path / f"b.{src_suffix}"],
        )
        assert len(dest) == 6
        assert dest.digests() == {r.digest() for r in results}
        # Idempotent: merging again adds nothing.
        assert dest.merge_from(shard_a) == 0

    def test_merge_overwrite_lets_source_win(self, tmp_path):
        (a,) = synthetic_results(1)
        newer = ScenarioResult(
            key=a.key,
            unreliability_total=a.unreliability_total + 1.0,
            fit=a.fit,
            mission_upset_probability=a.mission_upset_probability,
            analyze_runtime_s=a.analyze_runtime_s,
        )
        dest = ResultStore(tmp_path / "dest.jsonl")
        dest.add(a)
        src = ResultStore(tmp_path / "src.jsonl")
        src.add(newer)
        assert dest.merge_from(src) == 0  # default: existing wins
        assert dest.merge_from(src, overwrite=True) == 1
        assert dest.get(a.digest()).unreliability_total == (
            newer.unreliability_total
        )


# ---------------------------------------------------- concurrent writers


_WRITER_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.campaign import CampaignSpec, ResultStore, ScenarioResult
from repro.campaign.environments import SEA_LEVEL, AVIONICS

path, lane = sys.argv[1], int(sys.argv[2])
spec = CampaignSpec(
    circuits=("c17",),
    charges_fc=tuple(float(q) for q in range(1, 21)),
    environments=(SEA_LEVEL, AVIONICS),
    n_vectors=200,
    seed=3,
)
keys = [k for k in spec.scenarios() if k.environment == "sea-level"][:20]
results = [
    ScenarioResult(
        key=key,
        unreliability_total=float(i),
        fit=float(i) * 10.0,
        mission_upset_probability=0.5,
        analyze_runtime_s=0.0,
    )
    for i, key in enumerate(keys)
]
store = ResultStore(path)
for result in results[lane::2]:
    store.add(result)
store.close()
print("ok")
"""


class TestConcurrentWriters:
    @pytest.mark.parametrize("suffix", ["jsonl", "sqlite"])
    def test_two_processes_append_simultaneously(self, tmp_path, suffix):
        """Two writer processes interleave appends to one store; the
        result must load cleanly and contain both result sets."""
        path = tmp_path / f"shared.{suffix}"
        script = tmp_path / "writer.py"
        script.write_text(
            _WRITER_SCRIPT.format(src=SRC_DIR), encoding="utf-8"
        )
        root = str(Path(__file__).resolve().parent.parent)
        procs = [
            subprocess.Popen(
                [sys.executable, str(script), str(path), str(lane)],
                cwd=root,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for lane in (0, 1)
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            assert out.strip() == "ok"
        store = ResultStore(path)
        expected = {r.digest() for r in synthetic_results(20)}
        assert store.digests() == expected
        assert len(store) == 20
        for result in store.results():  # every record parses + verifies
            assert result.digest() in expected
