"""Unit tests for gate types and boolean semantics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuit.gate import (
    CONTROLLING_VALUE,
    Gate,
    GateType,
    NON_CONTROLLING_VALUE,
    evaluate,
    evaluate_words,
)
from repro.errors import CircuitError

LOGIC_TYPES = [t for t in GateType if t is not GateType.INPUT]
MULTI_INPUT = [GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
               GateType.XOR, GateType.XNOR]


class TestGateConstruction:
    def test_input_gate_has_no_fanins(self):
        gate = Gate("a", GateType.INPUT)
        assert gate.is_input and gate.fanin_count == 0

    def test_input_gate_rejects_fanins(self):
        with pytest.raises(CircuitError):
            Gate("a", GateType.INPUT, ("b",))

    def test_not_gate_requires_exactly_one_fanin(self):
        with pytest.raises(CircuitError):
            Gate("n", GateType.NOT, ())
        with pytest.raises(CircuitError):
            Gate("n", GateType.NOT, ("a", "b"))

    @pytest.mark.parametrize("gtype", MULTI_INPUT)
    def test_multi_input_gates_require_two_fanins(self, gtype):
        with pytest.raises(CircuitError):
            Gate("g", gtype, ("a",))
        assert Gate("g", gtype, ("a", "b")).fanin_count == 2

    def test_duplicate_fanins_rejected(self):
        with pytest.raises(CircuitError):
            Gate("g", GateType.AND, ("a", "a"))

    def test_empty_name_rejected(self):
        with pytest.raises(CircuitError):
            Gate("", GateType.NOT, ("a",))

    def test_wide_fanin_allowed(self):
        fanins = tuple(f"i{k}" for k in range(8))
        assert Gate("g", GateType.AND, fanins).fanin_count == 8


class TestScalarEvaluation:
    @pytest.mark.parametrize(
        "gtype,values,expected",
        [
            (GateType.BUF, [True], True),
            (GateType.NOT, [True], False),
            (GateType.AND, [True, True], True),
            (GateType.AND, [True, False], False),
            (GateType.NAND, [True, True], False),
            (GateType.NAND, [False, True], True),
            (GateType.OR, [False, False], False),
            (GateType.OR, [False, True], True),
            (GateType.NOR, [False, False], True),
            (GateType.NOR, [True, False], False),
            (GateType.XOR, [True, False], True),
            (GateType.XOR, [True, True], False),
            (GateType.XNOR, [True, True], True),
            (GateType.XNOR, [True, False], False),
        ],
    )
    def test_truth_tables(self, gtype, values, expected):
        assert evaluate(gtype, values) is expected

    def test_three_input_xor_is_parity(self):
        for a in (False, True):
            for b in (False, True):
                for c in (False, True):
                    assert evaluate(GateType.XOR, [a, b, c]) == (a ^ b ^ c)

    def test_input_evaluation_raises(self):
        with pytest.raises(CircuitError):
            evaluate(GateType.INPUT, [])


class TestControllingValues:
    def test_and_family_controlled_by_zero(self):
        assert CONTROLLING_VALUE[GateType.AND] is False
        assert CONTROLLING_VALUE[GateType.NAND] is False

    def test_or_family_controlled_by_one(self):
        assert CONTROLLING_VALUE[GateType.OR] is True
        assert CONTROLLING_VALUE[GateType.NOR] is True

    def test_non_controlling_complements_controlling(self):
        for gtype, value in CONTROLLING_VALUE.items():
            assert NON_CONTROLLING_VALUE[gtype] is (not value)

    def test_xor_class_has_no_controlling_value(self):
        assert GateType.XOR not in CONTROLLING_VALUE
        assert GateType.XNOR not in CONTROLLING_VALUE

    def test_controlling_value_fixes_output(self):
        for gtype, control in CONTROLLING_VALUE.items():
            forced = evaluate(gtype, [control, False])
            assert forced == evaluate(gtype, [control, True])


@st.composite
def word_inputs(draw):
    gtype = draw(st.sampled_from(LOGIC_TYPES))
    fanin = 1 if gtype in (GateType.BUF, GateType.NOT) else draw(
        st.integers(min_value=2, max_value=4)
    )
    words = draw(
        st.lists(
            st.integers(min_value=0, max_value=2**64 - 1),
            min_size=fanin,
            max_size=fanin,
        )
    )
    return gtype, [np.array([w], dtype=np.uint64) for w in words]


class TestWordEvaluation:
    @given(word_inputs())
    def test_word_evaluation_matches_scalar(self, case):
        """Bit-parallel evaluation agrees with scalar evaluation lane by
        lane — the core contract the simulator relies on."""
        gtype, words = case
        result = evaluate_words(gtype, words)
        for bit in range(64):
            lane = [bool(int(w[0]) >> bit & 1) for w in words]
            assert bool(int(result[0]) >> bit & 1) == evaluate(gtype, lane)

    def test_word_evaluation_input_raises(self):
        with pytest.raises(CircuitError):
            evaluate_words(GateType.INPUT, [])

    def test_buf_copies_not_aliases(self):
        word = np.array([7], dtype=np.uint64)
        out = evaluate_words(GateType.BUF, [word])
        out[0] = np.uint64(0)
        assert word[0] == 7
