"""Tests for the .bench parser/writer, including round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.bench_io import (
    known_keywords,
    parse_bench,
    parse_bench_file,
    write_bench,
    write_bench_file,
)
from repro.circuit.generator import GeneratorSpec, generate_circuit
from repro.circuit.iscas85 import iscas85_circuit
from repro.errors import BenchFormatError, UnknownGateError

SIMPLE = """
# comment line
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NAND(a, b)
"""


class TestParsing:
    def test_simple_parse(self):
        circuit = parse_bench(SIMPLE, "simple")
        assert circuit.inputs == ("a", "b")
        assert circuit.outputs == ("y",)
        assert circuit.gate("y").fanins == ("a", "b")

    def test_comments_and_blank_lines_ignored(self):
        circuit = parse_bench("#x\n\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
        assert circuit.gate_count == 1

    def test_case_insensitive_keywords(self):
        circuit = parse_bench("input(a)\noutput(y)\ny = nand(a, a2)\ninput(a2)")
        assert circuit.gate("y").fanins == ("a", "a2")

    def test_buff_and_inv_aliases(self):
        circuit = parse_bench(
            "INPUT(a)\nOUTPUT(y)\nb = BUFF(a)\ny = INV(b)\n"
        )
        assert circuit.gate_count == 2

    def test_unknown_keyword_rejected(self):
        with pytest.raises(BenchFormatError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(BenchFormatError):
            parse_bench("INPUT(a)\nwhat is this\n")

    def test_error_mentions_line_number(self):
        try:
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")
        except BenchFormatError as exc:
            assert "line 3" in str(exc)
        else:
            pytest.fail("expected BenchFormatError")

    def test_dangling_fanin_rejected(self):
        with pytest.raises(UnknownGateError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(ghost)\n")

    def test_known_keywords_exposed(self):
        assert "NAND" in known_keywords()


class TestRoundTrip:
    def test_c17_round_trip(self, c17):
        rebuilt = parse_bench(write_bench(c17), "c17rt")
        assert rebuilt.inputs == c17.inputs
        assert rebuilt.outputs == c17.outputs
        assert {g.name: (g.gtype, g.fanins) for g in rebuilt} == {
            g.name: (g.gtype, g.fanins) for g in c17
        }

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_generated_circuits_round_trip(self, seed):
        spec = GeneratorSpec(
            name="rt", n_inputs=4, n_outputs=3, n_gates=25, depth=4, seed=seed
        )
        circuit = generate_circuit(spec)
        rebuilt = parse_bench(write_bench(circuit), "rt")
        assert {g.name: (g.gtype, g.fanins) for g in rebuilt} == {
            g.name: (g.gtype, g.fanins) for g in circuit
        }
        assert rebuilt.outputs == circuit.outputs

    def test_file_round_trip(self, tmp_path, c17):
        path = tmp_path / "c17.bench"
        write_bench_file(c17, path)
        rebuilt = parse_bench_file(path)
        assert rebuilt.name == "c17"
        assert rebuilt.stats() == c17.stats()
