"""Tests for path counting, enumeration, sampling and the topology matrix."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.gate import GateType
from repro.circuit.generator import GeneratorSpec, generate_circuit
from repro.circuit.netlist import Circuit
from repro.circuit.paths import (
    collect_paths,
    count_paths,
    downstream_path_counts,
    enumerate_paths,
    sample_paths,
    topology_matrix,
)
from repro.errors import CircuitError


class TestCounting:
    def test_chain_has_one_path(self, chain4):
        assert count_paths(chain4) == 1

    def test_diamond_counts(self, diamond):
        # a->root->top->out, a->root->bottom->out, same via b: 4 total.
        assert count_paths(diamond) == 4

    def test_counts_match_enumeration(self, c17):
        assert count_paths(c17) == len(list(enumerate_paths(c17)))

    def test_po_feeding_logic_counts_both(self):
        circuit = Circuit()
        a = circuit.add_input("a")
        mid = circuit.add_gate("mid", GateType.NOT, [a])
        out2 = circuit.add_gate("out2", GateType.NOT, [mid])
        circuit.mark_output(mid)   # mid is a PO *and* drives out2
        circuit.mark_output(out2)
        assert count_paths(circuit) == 2

    def test_downstream_counts_at_inputs(self, diamond):
        counts = downstream_path_counts(diamond)
        assert counts["a"] == 2 and counts["b"] == 2


class TestEnumeration:
    def test_paths_are_gate_sequences(self, diamond):
        paths = set(enumerate_paths(diamond))
        assert ("root", "top", "out") in paths
        assert ("root", "bottom", "out") in paths
        assert len(paths) == 2  # distinct gate sequences (from a and b)

    def test_limit_respected(self, c432):
        limited = list(enumerate_paths(c432, limit=10))
        assert len(limited) == 10

    def test_every_path_starts_after_pi_and_ends_at_po(self, c17):
        for path in enumerate_paths(c17):
            first, last = path[0], path[-1]
            assert any(
                c17.gate(f).is_input for f in c17.gate(first).fanins
            )
            assert c17.is_output(last)


class TestSampling:
    def test_sampling_is_deterministic(self, c432):
        assert sample_paths(c432, 20, seed=3) == sample_paths(c432, 20, seed=3)

    def test_sampled_paths_are_real(self, c432):
        real = None
        for path in sample_paths(c432, 30, seed=1):
            # Verify consecutive gates are actually connected.
            for src, dst in zip(path, path[1:]):
                assert src in c432.gate(dst).fanins
            assert c432.is_output(path[-1])
            real = path
        assert real is not None

    def test_small_circuit_sampling_covers_all(self, c17):
        # Distinct gate sequences (several PIs can share one sequence,
        # since primary inputs carry no delay and are excluded).
        distinct = set(enumerate_paths(c17))
        sampled = set(sample_paths(c17, 600, seed=0))
        assert sampled == distinct

    def test_invalid_count_rejected(self, c17):
        with pytest.raises(CircuitError):
            sample_paths(c17, 0)


class TestCollectAndMatrix:
    def test_collect_exhaustive_when_small(self, c17):
        paths = collect_paths(c17, max_paths=10_000)
        assert len(paths) == count_paths(c17)

    def test_collect_includes_extra(self, c17):
        extra = list(enumerate_paths(c17, limit=1))
        paths = collect_paths(c17, max_paths=3, extra=extra)
        assert extra[0] in paths

    def test_topology_matrix_shape_and_content(self, diamond):
        paths = list(enumerate_paths(diamond))
        order = [g.name for g in diamond.gates()]
        matrix = topology_matrix(paths, order)
        assert matrix.shape == (len(paths), len(order))
        index = {name: i for i, name in enumerate(order)}
        for row, path in enumerate(paths):
            for name in order:
                assert matrix[row, index[name]] == (1.0 if name in path else 0.0)

    def test_matrix_rejects_unknown_gate(self):
        with pytest.raises(CircuitError):
            topology_matrix([("ghost",)], ["real"])

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_path_delay_via_matrix_equals_direct_sum(self, seed):
        """T @ d reproduces per-path delay sums on random circuits."""
        spec = GeneratorSpec("pm", 5, 3, 40, 5, seed=seed)
        circuit = generate_circuit(spec)
        paths = collect_paths(circuit, max_paths=50, seed=seed)
        order = [
            n for n in circuit.topological_order()
            if not circuit.gate(n).is_input
        ]
        rng = np.random.default_rng(seed)
        delays = {name: float(rng.uniform(1.0, 10.0)) for name in order}
        matrix = topology_matrix(paths, order)
        vector = np.array([delays[n] for n in order])
        products = matrix @ vector
        for row, path in enumerate(paths):
            assert products[row] == pytest.approx(
                sum(delays[n] for n in path)
            )
