#!/usr/bin/env python
"""Summarize a Chrome trace file: top-N spans by self-time.

Reads a trace written by :func:`repro.telemetry.write_chrome_trace`
(or any Chrome trace-event JSON using B/E duration pairs) and prints
one line per span *name*, aggregated across occurrences, ranked by
self-time — the time inside a span not covered by its children, i.e.
where the program actually was.

Usage::

    python tools/trace_summary.py trace.json          # top 15
    python tools/trace_summary.py trace.json --top 5

Stdlib-only on purpose: point it at a trace from any machine without
installing the repro package.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterable, Sequence


def load_events(path: str) -> list[dict]:
    """The trace-event list of one Chrome trace file.

    Accepts both the object form (``{"traceEvents": [...]}``, what
    ``write_chrome_trace`` emits) and the bare array form.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict):
        events = payload.get("traceEvents", [])
    else:
        events = payload
    return [event for event in events if isinstance(event, dict)]


def summarize_events(events: Iterable[dict]) -> list[dict]:
    """Aggregate B/E duration pairs into per-name rows.

    Returns rows sorted by descending self-time, each with ``name``,
    ``count``, ``total_us`` and ``self_us``.  Self-time is computed per
    span instance from its direct children on the same (pid, tid)
    track, matched by B/E nesting — exactly the Chrome-trace stacking
    rule, so the numbers agree with what Perfetto renders.
    """
    # Replay each (pid, tid) track's B/E stream against a stack.
    tracks: dict[tuple, list[dict]] = {}
    for event in events:
        if event.get("ph") in ("B", "E"):
            key = (event.get("pid", 0), event.get("tid", 0))
            tracks.setdefault(key, []).append(event)

    totals: dict[str, dict] = {}
    for stream in tracks.values():
        stream.sort(key=lambda event: event["ts"])
        stack: list[dict] = []  # frames: {name, ts, child_us}
        for event in stream:
            if event["ph"] == "B":
                stack.append(
                    {"name": event.get("name", "?"), "ts": event["ts"], "child_us": 0.0}
                )
            elif stack:
                frame = stack.pop()
                duration = max(0.0, event["ts"] - frame["ts"])
                if stack:
                    stack[-1]["child_us"] += duration
                row = totals.setdefault(
                    frame["name"], {"count": 0, "total_us": 0.0, "self_us": 0.0}
                )
                row["count"] += 1
                row["total_us"] += duration
                row["self_us"] += max(0.0, duration - frame["child_us"])
    rows = [{"name": name, **row} for name, row in totals.items()]
    rows.sort(key=lambda row: (-row["self_us"], row["name"]))
    return rows


def format_summary(rows: Sequence[dict], top: int = 15) -> str:
    """A fixed-width table of the ``top`` rows by self-time."""
    lines = [
        f"{'name':<40} {'count':>6} {'total':>12} {'self':>12}",
    ]
    for row in rows[:top]:
        lines.append(
            f"{row['name']:<40} {row['count']:>6} "
            f"{row['total_us'] / 1e3:>9.3f} ms {row['self_us'] / 1e3:>9.3f} ms"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/trace_summary.py",
        description="Top-N spans by self-time from a Chrome trace file.",
    )
    parser.add_argument("trace", help="Chrome trace JSON file")
    parser.add_argument(
        "--top", type=int, default=15, metavar="N", help="rows to print (default 15)"
    )
    args = parser.parse_args(argv)
    try:
        events = load_events(args.trace)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 1
    rows = summarize_events(events)
    if not rows:
        print(f"error: no B/E duration events in {args.trace}", file=sys.stderr)
        return 1
    print(format_summary(rows, top=args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
