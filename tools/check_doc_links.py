#!/usr/bin/env python
"""Check internal links in the repository's markdown documentation.

Scans ``README.md`` and ``docs/*.md`` for markdown links and verifies
that every *relative* target resolves to an existing file or directory
(anchors are stripped; external ``http(s)``/``mailto`` links are
ignored).  Exits non-zero listing every broken link — CI runs this in
the docs job so the guides can't silently rot as files move.

Usage: python tools/check_doc_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — target captured up to the closing paren.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Inline code spans (may legitimately contain bracket/paren text).
CODE_SPAN = re.compile(r"`[^`]*`")
EXTERNAL = ("http://", "https://", "mailto:")


def doc_files():
    yield ROOT / "README.md"
    yield from sorted((ROOT / "docs").glob("*.md"))


def check_file(path: Path) -> list[str]:
    problems = []
    text = path.read_text(encoding="utf-8")
    in_code_block = False
    for line_number, line in enumerate(text.splitlines(), start=1):
        if line.strip().startswith("```"):
            in_code_block = not in_code_block
            continue
        if in_code_block:
            continue
        for match in LINK.finditer(CODE_SPAN.sub("", line)):
            target = match.group(1)
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(ROOT)}:{line_number}: broken link "
                    f"-> {target}"
                )
    return problems


def main() -> int:
    problems: list[str] = []
    checked = 0
    for path in doc_files():
        if not path.exists():
            problems.append(f"expected documentation file missing: {path}")
            continue
        checked += 1
        problems.extend(check_file(path))
    if problems:
        print("\n".join(problems), file=sys.stderr)
        return 1
    print(f"checked {checked} markdown files: all internal links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
